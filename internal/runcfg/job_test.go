package runcfg

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"twolm/internal/jobspec"
	"twolm/internal/mem"
	"twolm/internal/sweep"
)

// TestJobSpecRoundTrip is the adapter contract: a run of the
// flag-constructed JobSpec is byte-identical to the flags-equivalent
// sweep built by hand from the same flag values — flags → spec →
// run produces the counters the flags always meant.
func TestJobSpecRoundTrip(t *testing.T) {
	c := Defaults()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-scale", "512", "-channels", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	js := c.JobSpec()
	if err := js.Validate(); err != nil {
		t.Fatalf("flag-derived spec invalid: %v", err)
	}
	got, err := sweep.RunJob(context.Background(), js, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The flags-equivalent sweep, written out longhand from the same
	// flag values.
	lines := DefaultJobCacheKiB * 1024 / mem.Line * jobspec.DefaultRatio
	want := sweep.Spec{
		Name: "flags",
		Axes: jobspec.Axes{
			CacheKiB:    []uint64{DefaultJobCacheKiB},
			Channels:    []int{2},
			Ratios:      []uint64{jobspec.DefaultRatio},
			Patterns:    []string{jobspec.PatternSequential},
			SampleLines: lines / 512,
		},
	}
	r, err := sweep.New(want)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Run(context.Background(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := sweep.WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.CSV, csv.Bytes()) {
		t.Errorf("flag-spec run differs from flags-equivalent sweep:\nspec: %q\nflag: %q", got.CSV, csv.Bytes())
	}
}

// TestJobSpecQuickOverridesScale pins the historical -quick semantics.
func TestJobSpecQuickOverridesScale(t *testing.T) {
	c := Defaults()
	c.Quick = true
	c.Scale = 64
	if got := c.JobSpec().Workload.Scale; got != 8192 {
		t.Errorf("quick scale = %d, want 8192", got)
	}
	c.Quick = false
	if got := c.JobSpec().Workload.Scale; got != 64 {
		t.Errorf("scale = %d, want 64", got)
	}
}

// TestLoadJob: unset flag loads nothing; a valid file loads; an
// invalid file fails with the file's path in the error.
func TestLoadJob(t *testing.T) {
	var c Common
	if s, err := c.LoadJob(); s != nil || err != nil {
		t.Fatalf("unset -job: %v, %v", s, err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"version":1,"geometry":{"cache_kib":64}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Job = good
	s, err := c.LoadJob()
	if err != nil || s == nil || s.Geometry.CacheKiB != 64 {
		t.Fatalf("good file: %+v, %v", s, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"geometri":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Job = bad
	if _, err := c.LoadJob(); err == nil {
		t.Fatal("unknown-field file accepted")
	}
}
