package runcfg

import (
	"flag"

	"twolm/internal/jobspec"
)

// DefaultJobCacheKiB is the DRAM-cache capacity of the flag-derived
// canonical job: 4 MiB, the single-channel microbenchmark geometry.
const DefaultJobCacheKiB uint64 = 4096

// RegisterJob installs the -job flag: a path to a versioned jobspec
// JSON file that bypasses the loose flag surface entirely. Only the
// job-running binaries (repro, nvsweep) register it; the bespoke
// binaries keep their own surfaces.
func (c *Common) RegisterJob(fs *flag.FlagSet) {
	fs.StringVar(&c.Job, "job", c.Job,
		"path to a jobspec JSON file; bypasses the workload flags so one spec file reproduces the run across repro, nvsweep and simd")
}

// LoadJob strictly decodes and validates the -job file. It returns
// (nil, nil) when the flag was not given, so callers branch with one
// check.
func (c *Common) LoadJob() (*jobspec.Spec, error) {
	if c.Job == "" {
		return nil, nil
	}
	return jobspec.Load(c.Job)
}

// JobSpec lowers the flag surface onto the canonical job description:
// the same geometry/workload a flag-driven run executes, expressed as
// the versioned spec a -job file (or a simd POST body) would carry.
// This is the adapter direction of the API redesign — flags construct
// a jobspec.Spec; they no longer carry independent meaning — and the
// round-trip test pins that a run of JobSpec() is byte-identical to
// the flags-equivalent sweep.
//
// The -quick flag maps to the historical footprint override (scale
// 8192) exactly as the suite binaries apply it.
func (c *Common) JobSpec() jobspec.Spec {
	scale := c.Scale
	if c.Quick {
		scale = 8192
	}
	return jobspec.Spec{
		Version: jobspec.Version,
		Name:    "flags",
		Geometry: &jobspec.Geometry{
			CacheKiB: DefaultJobCacheKiB,
			Ways:     1,
			Channels: c.Channels,
			DIMMs:    1,
		},
		Policy: jobspec.PolicyHardware,
		Workload: &jobspec.Workload{
			Pattern: jobspec.PatternSequential,
			Ratio:   jobspec.DefaultRatio,
			Seed:    jobspec.DefaultSeed,
			Scale:   scale,
			Passes:  1,
		},
	}
}
