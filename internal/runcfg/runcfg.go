// Package runcfg is the shared command-line surface of the repro
// binaries. Every command (repro, cnnsim, graphsim, nvbench, nvsweep,
// and — partially — nvtrace) historically grew its own copy of the same
// flag block; this package owns it once, so all binaries accept the
// same -out/-scale/-quick/-parallel/-channels/-metrics-addr set with
// the same validation and the same live-metrics bootstrap.
//
// The metrics bootstrap deliberately returns the concrete
// *telemetry.Prom rather than a telemetry.Sink: when -metrics-addr is
// unset the result is a nil pointer, and callers must check that nil
// before wrapping it in telemetry.Tee or telemetry.WithLabel. Storing
// a typed nil pointer in a Sink interface would make sink != nil true
// on the hot path and defeat the disabled-telemetry fast path.
package runcfg

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"runtime"

	"twolm/internal/telemetry"
)

// Common holds the flag values shared by every binary. Set the
// defaults you want, then Register the flags and Parse.
type Common struct {
	// Out is the artifact output directory ("" prints to stdout only,
	// in binaries where artifacts are optional).
	Out string
	// Scale is the footprint scale divisor (nonzero power of two).
	Scale uint64
	// Quick selects small footprints for a fast sanity pass.
	Quick bool
	// Parallel is the experiment worker count (1 = serial).
	Parallel int
	// Channels is the IMC channel count for sharded runs.
	Channels int
	// MetricsAddr, when nonempty, is the listen address of the
	// Prometheus /metrics endpoint.
	MetricsAddr string
	// Job, when nonempty, is the path of a jobspec JSON file that
	// replaces the loose workload flags (see RegisterJob/LoadJob).
	Job string

	// BoundAddr is filled in by Metrics with the address the listener
	// actually bound — it differs from MetricsAddr when the requested
	// port was 0.
	BoundAddr string
}

// Defaults returns the canonical default values shared by the suite
// binaries: results/ output, the calibrated 1/1024 footprint scale,
// one worker per CPU, and the Cascade Lake six-channel socket.
func Defaults() Common {
	return Common{
		Out:      "results",
		Scale:    1024,
		Parallel: runtime.NumCPU(),
		Channels: 6,
	}
}

// Register installs the shared flags on fs, using c's current field
// values as the defaults. Binary-specific flags are registered by the
// caller alongside.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Out, "out", c.Out, "output directory for artifacts")
	fs.Uint64Var(&c.Scale, "scale", c.Scale, "footprint scale divisor (power of two)")
	fs.BoolVar(&c.Quick, "quick", c.Quick, "small footprints for a fast pass")
	fs.IntVar(&c.Parallel, "parallel", c.Parallel, "experiment worker count (1 = serial)")
	fs.IntVar(&c.Channels, "channels", c.Channels, "IMC channels for sharded runs")
	c.RegisterMetrics(fs)
}

// RegisterMetrics installs only the -metrics-addr flag, for binaries
// like nvtrace whose primary flag surface is bespoke but which still
// expose the live endpoint.
func (c *Common) RegisterMetrics(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", c.MetricsAddr,
		"serve Prometheus metrics at this address (e.g. 127.0.0.1:9464)")
}

// Validate rejects malformed values up front, before any experiment
// spends time — the same checks every binary used to carry inline.
func (c *Common) Validate() error {
	if c.Scale == 0 || c.Scale&(c.Scale-1) != 0 {
		return fmt.Errorf("-scale %d must be a nonzero power of two", c.Scale)
	}
	if c.Parallel < 1 {
		return fmt.Errorf("-parallel %d must be positive", c.Parallel)
	}
	if c.Channels < 1 {
		return fmt.Errorf("-channels %d must be positive", c.Channels)
	}
	return nil
}

// Metrics starts the Prometheus endpoint when -metrics-addr was
// given: it binds the address synchronously (so startup errors
// surface here, not in a goroutine), serves the exporter at /metrics
// in the background for the life of the process, and returns the
// exporter for the caller to wire into telemetry sinks and gauges.
//
// With no -metrics-addr it returns (nil, nil); see the package
// comment for why callers must check the nil before wrapping the
// result in a telemetry.Sink.
func (c *Common) Metrics() (*telemetry.Prom, error) {
	if c.MetricsAddr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", c.MetricsAddr)
	if err != nil {
		return nil, fmt.Errorf("-metrics-addr %s: %w", c.MetricsAddr, err)
	}
	c.BoundAddr = ln.Addr().String()
	prom := telemetry.NewProm()
	mux := http.NewServeMux()
	mux.Handle("/metrics", prom)
	go func() {
		// Serve returns only when the listener closes, which never
		// happens: the endpoint lives as long as the process.
		_ = http.Serve(ln, mux)
	}()
	return prom, nil
}
