package runcfg

import (
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	c := Defaults()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{
		"-out", "artifacts",
		"-scale", "2048",
		"-quick",
		"-parallel", "3",
		"-channels", "2",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Out != "artifacts" || c.Scale != 2048 || !c.Quick ||
		c.Parallel != 3 || c.Channels != 2 || c.MetricsAddr != "127.0.0.1:0" {
		t.Errorf("parsed config %+v does not match the flag values", c)
	}
}

func TestDefaultsValidate(t *testing.T) {
	c := Defaults()
	if err := c.Validate(); err != nil {
		t.Errorf("defaults must validate, got %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Common)
	}{
		{"zero scale", func(c *Common) { c.Scale = 0 }},
		{"non-power-of-two scale", func(c *Common) { c.Scale = 1000 }},
		{"zero parallel", func(c *Common) { c.Parallel = 0 }},
		{"zero channels", func(c *Common) { c.Channels = 0 }},
	}
	for _, tc := range cases {
		c := Defaults()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, c)
		}
	}
}

func TestMetricsDisabledReturnsNil(t *testing.T) {
	c := Defaults()
	prom, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if prom != nil {
		t.Error("Metrics without -metrics-addr must return a nil exporter")
	}
}

func TestMetricsServesExposition(t *testing.T) {
	c := Defaults()
	c.MetricsAddr = "127.0.0.1:0"
	prom, err := c.Metrics()
	if err != nil {
		t.Skipf("cannot bind loopback listener in this environment: %v", err)
	}
	if prom == nil {
		t.Fatal("Metrics with an address returned a nil exporter")
	}
	if c.BoundAddr == "" || c.BoundAddr == c.MetricsAddr {
		t.Errorf("BoundAddr %q should carry the resolved port", c.BoundAddr)
	}
	prom.SetGauge("jobs_total", "Experiment jobs in this run.", 3)

	resp, err := http.Get("http://" + c.BoundAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q is not the text exposition format", ct)
	}
	if !strings.Contains(string(body), "twolm_jobs_total 3") {
		t.Errorf("exposition missing the published gauge:\n%s", body)
	}
}
