package dram

import (
	"math/rand"
	"testing"

	"twolm/internal/mem"
)

// TestRangeMatchesPerLine proves the arithmetic channel distribution of
// ReadRange/WriteRange is byte-identical to per-line calls, across
// channel counts (including the non-power-of-two hardware count of 6),
// start offsets, and run lengths.
func TestRangeMatchesPerLine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, channels := range []int{1, 2, 3, 5, 6, 12} {
		perLine, err := New(channels, mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(channels, mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			base := uint64(rng.Intn(1024)) * mem.Line
			n := uint64(rng.Intn(256))
			if trial&1 == 0 {
				for i := uint64(0); i < n; i++ {
					perLine.Read(base + i*mem.Line)
				}
				batched.ReadRange(base, n)
			} else {
				for i := uint64(0); i < n; i++ {
					perLine.Write(base + i*mem.Line)
				}
				batched.WriteRange(base, n)
			}
		}
		a, b := perLine.ChannelCounters(), batched.ChannelCounters()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("channels=%d: channel %d diverges: per-line %+v, batched %+v",
					channels, i, a[i], b[i])
			}
		}
	}
}

// TestRangeShortRuns pins ranges shorter than the channel count, where
// only some channels are touched.
func TestRangeShortRuns(t *testing.T) {
	m, err := New(6, mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	m.ReadRange(2*mem.Line, 3) // lines 2,3,4
	for i, c := range m.ChannelCounters() {
		want := uint64(0)
		if i >= 2 && i <= 4 {
			want = 1
		}
		if c.CASReads != want {
			t.Errorf("channel %d reads = %d, want %d", i, c.CASReads, want)
		}
	}
	m.Reset()
	m.ReadRange(0, 0)
	if m.TotalReads() != 0 {
		t.Errorf("zero-length range counted %d reads", m.TotalReads())
	}
}
