package dram

import (
	"testing"

	"twolm/internal/mem"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, mem.MiB); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := New(6, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(6, 100); err == nil {
		t.Error("non-line-multiple capacity accepted")
	}
	m, err := New(6, 192*mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels() != 6 || m.Capacity() != 192*mem.MiB {
		t.Errorf("got %d channels, %d capacity", m.Channels(), m.Capacity())
	}
}

func TestCounters(t *testing.T) {
	m, err := New(3, mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		m.Read(i * mem.Line)
	}
	for i := uint64(0); i < 150; i++ {
		m.Write(i * mem.Line)
	}
	if m.TotalReads() != 300 {
		t.Errorf("TotalReads = %d, want 300", m.TotalReads())
	}
	if m.TotalWrites() != 150 {
		t.Errorf("TotalWrites = %d, want 150", m.TotalWrites())
	}
}

// TestChannelInterleave: a sequential line stream should balance
// perfectly across channels.
func TestChannelInterleave(t *testing.T) {
	m, err := New(6, mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	const lines = 6 * 1000
	for i := uint64(0); i < lines; i++ {
		m.Read(i * mem.Line)
	}
	for i, ch := range m.ChannelCounters() {
		if ch.CASReads != 1000 {
			t.Errorf("channel %d reads = %d, want 1000", i, ch.CASReads)
		}
	}
}

func TestSameLineSameChannel(t *testing.T) {
	m, _ := New(6, mem.MiB)
	addr := uint64(12345 * mem.Line)
	m.Read(addr)
	m.Write(addr)
	counters := m.ChannelCounters()
	for _, ch := range counters {
		if (ch.CASReads == 0) != (ch.CASWrites == 0) {
			t.Error("read and write of the same address hit different channels")
		}
	}
}

func TestReset(t *testing.T) {
	m, _ := New(2, mem.MiB)
	m.Read(0)
	m.Write(64)
	m.Reset()
	if m.TotalReads() != 0 || m.TotalWrites() != 0 {
		t.Error("Reset left nonzero counters")
	}
}
