// Package dram models the DDR4 DRAM side of the platform: a set of
// channels per socket, each counting column-access strobes (CAS) for
// reads and writes exactly like the uncore IMC counters the paper
// samples.
//
// In 2LM mode the DRAM DIMMs hold the direct-mapped cache; the tags live
// in the ECC bits, so a tag is fetched for free with every data read and
// written for free with every data write. A *standalone* tag check still
// costs a full CAS read — that asymmetry is the root of the 2LM access
// amplification and is accounted for by the IMC model, which calls into
// this package once per actual DRAM transaction.
package dram

import (
	"fmt"

	"twolm/internal/mem"
)

// Channel is a single DDR4 channel with CAS event counters. Counters
// are in line (64 B) units.
type Channel struct {
	CASReads  uint64
	CASWrites uint64
}

// Module is one socket's worth of DRAM: n interleaved channels.
type Module struct {
	channels []Channel
	capacity uint64
}

// New returns a DRAM module with the given channel count and total
// capacity in bytes.
func New(channels int, capacity uint64) (*Module, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("dram: channel count %d must be positive", channels)
	}
	if capacity == 0 || capacity%mem.Line != 0 {
		return nil, fmt.Errorf("dram: capacity %d must be a positive multiple of %d", capacity, mem.Line)
	}
	return &Module{channels: make([]Channel, channels), capacity: capacity}, nil
}

// Channels returns the number of channels.
func (m *Module) Channels() int { return len(m.channels) }

// Capacity returns the module capacity in bytes.
func (m *Module) Capacity() uint64 { return m.capacity }

// channel maps a line address onto its interleaved channel.
func (m *Module) channel(addr uint64) *Channel {
	return &m.channels[(addr>>mem.LineShift)%uint64(len(m.channels))]
}

// Read records one 64 B CAS read at addr.
func (m *Module) Read(addr uint64) { m.channel(addr).CASReads++ }

// Write records one 64 B CAS write at addr.
func (m *Module) Write(addr uint64) { m.channel(addr).CASWrites++ }

// TotalReads returns the CAS read count summed over channels (lines).
func (m *Module) TotalReads() uint64 {
	var n uint64
	for i := range m.channels {
		n += m.channels[i].CASReads
	}
	return n
}

// TotalWrites returns the CAS write count summed over channels (lines).
func (m *Module) TotalWrites() uint64 {
	var n uint64
	for i := range m.channels {
		n += m.channels[i].CASWrites
	}
	return n
}

// ChannelCounters returns a copy of the per-channel counters, for
// balance checks and reporting.
func (m *Module) ChannelCounters() []Channel {
	out := make([]Channel, len(m.channels))
	copy(out, m.channels)
	return out
}

// Reset zeroes all counters.
func (m *Module) Reset() {
	for i := range m.channels {
		m.channels[i] = Channel{}
	}
}
