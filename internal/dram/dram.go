// Package dram models the DDR4 DRAM side of the platform: a set of
// channels per socket, each counting column-access strobes (CAS) for
// reads and writes exactly like the uncore IMC counters the paper
// samples.
//
// In 2LM mode the DRAM DIMMs hold the direct-mapped cache; the tags live
// in the ECC bits, so a tag is fetched for free with every data read and
// written for free with every data write. A *standalone* tag check still
// costs a full CAS read — that asymmetry is the root of the 2LM access
// amplification and is accounted for by the IMC model, which calls into
// this package once per actual DRAM transaction.
package dram

import (
	"fmt"

	"twolm/internal/fastdiv"
	"twolm/internal/mem"
)

// Channel is a single DDR4 channel with CAS event counters. Counters
// are in line (64 B) units.
type Channel struct {
	CASReads  uint64
	CASWrites uint64
}

// Module is one socket's worth of DRAM: n interleaved channels.
type Module struct {
	channels []Channel
	chDiv    fastdiv.Divisor
	capacity uint64
}

// New returns a DRAM module with the given channel count and total
// capacity in bytes.
func New(channels int, capacity uint64) (*Module, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("dram: channel count %d must be positive", channels)
	}
	if capacity == 0 || capacity%mem.Line != 0 {
		return nil, fmt.Errorf("dram: capacity %d must be a positive multiple of %d", capacity, mem.Line)
	}
	return &Module{
		channels: make([]Channel, channels),
		chDiv:    fastdiv.New(uint64(channels)),
		capacity: capacity,
	}, nil
}

// Channels returns the number of channels.
func (m *Module) Channels() int { return len(m.channels) }

// Capacity returns the module capacity in bytes.
func (m *Module) Capacity() uint64 { return m.capacity }

// channel maps a line address onto its interleaved channel. Cascade
// Lake has six channels — not a power of two — so the interleave mod
// uses a precomputed reciprocal instead of a divide instruction.
func (m *Module) channel(addr uint64) *Channel {
	return &m.channels[m.chDiv.Mod(addr>>mem.LineShift)]
}

// Read records one 64 B CAS read at addr.
func (m *Module) Read(addr uint64) { m.channel(addr).CASReads++ }

// Write records one 64 B CAS write at addr.
func (m *Module) Write(addr uint64) { m.channel(addr).CASWrites++ }

// LineChannel resolves the channel owning addr's line. The IMC issues
// up to three CAS transactions to the same line per request (tag-check
// read, fill write, data write); resolving the interleave mod once and
// bumping the returned channel's counters directly is equivalent to
// calling Read/Write per transaction, because the module totals are
// derived from the channel counters.
func (m *Module) LineChannel(addr uint64) *Channel { return m.channel(addr) }

// ChannelIndex returns the interleave index of addr's line, for callers
// walking consecutive lines that advance the index incrementally (the
// index of line+1 is index+1 mod Channels).
func (m *Module) ChannelIndex(addr uint64) int {
	return int(m.chDiv.Mod(addr >> mem.LineShift))
}

// ChannelAt returns channel i for counter bumps paired with
// ChannelIndex.
func (m *Module) ChannelAt(i int) *Channel { return &m.channels[i] }

// rangeCounts distributes n consecutive lines starting at addr over the
// interleaved channels arithmetically: the lines congruent to channel
// (first+k) mod channels number n/channels, plus one for the first
// n%channels offsets. Byte-identical to calling channel() n times.
func (m *Module) rangeCounts(addr, n uint64, bump func(c *Channel, cnt uint64)) {
	ch := uint64(len(m.channels))
	first := m.chDiv.Mod(addr >> mem.LineShift)
	base, rem := m.chDiv.DivMod(n)
	for k := uint64(0); k < ch; k++ {
		cnt := base
		if k < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		c := first + k
		if c >= ch {
			c -= ch
		}
		bump(&m.channels[c], cnt)
	}
}

// bumpReads and bumpWrites are the rangeCounts callbacks. They are
// package-level functions, not closures, so passing them allocates
// nothing on the //alloc:free range paths.
func bumpReads(c *Channel, cnt uint64)  { c.CASReads += cnt }
func bumpWrites(c *Channel, cnt uint64) { c.CASWrites += cnt }

// ReadRange records n consecutive 64 B CAS reads starting at the line
// containing addr, without walking the lines one by one.
func (m *Module) ReadRange(addr, n uint64) {
	m.rangeCounts(addr, n, bumpReads)
}

// WriteRange records n consecutive 64 B CAS writes starting at the
// line containing addr, without walking the lines one by one.
func (m *Module) WriteRange(addr, n uint64) {
	m.rangeCounts(addr, n, bumpWrites)
}

// TotalReads returns the CAS read count summed over channels (lines).
func (m *Module) TotalReads() uint64 {
	var n uint64
	for i := range m.channels {
		n += m.channels[i].CASReads
	}
	return n
}

// TotalWrites returns the CAS write count summed over channels (lines).
func (m *Module) TotalWrites() uint64 {
	var n uint64
	for i := range m.channels {
		n += m.channels[i].CASWrites
	}
	return n
}

// ChannelCounters returns a copy of the per-channel counters, for
// balance checks and reporting.
func (m *Module) ChannelCounters() []Channel {
	out := make([]Channel, len(m.channels))
	copy(out, m.channels)
	return out
}

// Reset zeroes all counters.
func (m *Module) Reset() {
	for i := range m.channels {
		m.channels[i] = Channel{}
	}
}
