// Package bwmodel provides the analytic bandwidth and latency model used
// to convert simulated device traffic into elapsed time.
//
// The simulator separates *what* traffic a workload generates (counted
// exactly by the IMC model in internal/imc) from *how fast* devices can
// service it. This package answers the second question with a small
// analytic model calibrated to the numbers reported for the paper's test
// platform (two-socket Cascade Lake, six DDR4-2666 channels and six
// 512 GiB Optane DC DIMMs per socket) and the Optane characterization
// literature it cites (Izraelevitz et al., Yang et al. FAST'20):
//
//   - Device ceilings: each device class has a peak bandwidth per socket
//     (DRAM ~105 GB/s; NVRAM read 30.6 GB/s, write 11.4 GB/s for the
//     512 GiB DIMM generation).
//   - Thread scaling: a single core can only keep a limited number of
//     line transfers in flight (line-fill buffers / WC buffers), so
//     per-thread throughput is outstanding*linesize/latency (Little's
//     law); aggregate throughput is min(threads * per-thread, ceiling).
//   - Granularity/merging: Optane media operates on 256 B blocks behind
//     a small write-combining buffer (the XPBuffer). Sequential streams
//     merge 64 B lines into full media blocks; random sub-256 B accesses
//     do not, causing read and especially write amplification at the
//     media and a corresponding bandwidth loss.
//   - Saturation decline: NVRAM write bandwidth peaks near 4 threads and
//     declines slightly as more threads contend for the device's write
//     queue, as observed in the paper's Figure 2b.
package bwmodel

import "twolm/internal/mem"

// Params describes one memory device class (one socket's worth).
type Params struct {
	// Name identifies the device class in reports.
	Name string

	// ReadLatencyNS and WriteLatencyNS are unloaded access latencies in
	// nanoseconds, used for the per-thread Little's-law issue limit.
	ReadLatencyNS  float64
	WriteLatencyNS float64

	// PeakReadBW and PeakWriteBW are the device ceilings in bytes/s for
	// well-formed (sequential, large-granularity) traffic.
	PeakReadBW  float64
	PeakWriteBW float64

	// MediaGranularity is the internal access size of the device in
	// bytes (256 for Optane media, 64 for DRAM). Accesses smaller than
	// this that cannot be merged waste media bandwidth.
	MediaGranularity int

	// ReadOutstanding and WriteOutstanding are per-thread in-flight
	// line-transfer limits for demand reads (line-fill buffers) and
	// streaming writes (write-combining buffers).
	ReadOutstanding  float64
	WriteOutstanding float64

	// SeqPrefetchBoost multiplies effective read outstanding for
	// sequential streams (hardware prefetchers run ahead of demand).
	SeqPrefetchBoost float64

	// WriteSaturationThreads is the thread count at which write
	// bandwidth peaks; beyond it, WriteContentionSlope fraction of peak
	// is lost per extra thread (models Optane write-queue contention).
	WriteSaturationThreads int
	WriteContentionSlope   float64
}

// CascadeLakeDRAM returns parameters for one socket of six DDR4-2666
// channels (32 GiB DIMM per channel). 21.3 GB/s per channel theoretical;
// ~82% achievable.
func CascadeLakeDRAM() Params {
	return Params{
		Name:             "DRAM",
		ReadLatencyNS:    85,
		WriteLatencyNS:   85,
		PeakReadBW:       105 * mem.GB,
		PeakWriteBW:      95 * mem.GB,
		MediaGranularity: 64,
		ReadOutstanding:  10,
		WriteOutstanding: 10,
		SeqPrefetchBoost: 2.4,
		// DRAM does not exhibit the Optane write cliff.
		WriteSaturationThreads: 24,
		WriteContentionSlope:   0,
	}
}

// OptaneDC512 returns parameters for one socket of six interleaved
// 512 GiB Optane DC DIMMs. The paper measures 30 GB/s read (5.3 GB/s per
// DIMM for the 512 GiB parts) and just over 11 GB/s write.
func OptaneDC512() Params {
	return Params{
		Name:                   "NVRAM",
		ReadLatencyNS:          320,
		WriteLatencyNS:         100, // to the DIMM's write queue, not the media
		PeakReadBW:             30.6 * mem.GB,
		PeakWriteBW:            11.4 * mem.GB,
		MediaGranularity:       256,
		ReadOutstanding:        10,
		WriteOutstanding:       6,
		SeqPrefetchBoost:       2.2,
		WriteSaturationThreads: 4,
		WriteContentionSlope:   0.004,
	}
}

// granReadEff returns the fraction of peak read bandwidth retained for
// the given pattern and access granularity.
func (p Params) granReadEff(pattern mem.Pattern, gran int) float64 {
	if gran <= 0 {
		gran = mem.Line
	}
	switch pattern {
	case mem.Sequential:
		return 1.0
	case mem.InterleavedSeq:
		// Line-granular interleaved streams at the media controller:
		// most blocks are still read whole but scheduling is worse.
		return 0.77
	default: // Random
		if gran >= p.MediaGranularity {
			// Full media blocks; small penalty for lost locality.
			if gran >= 2*p.MediaGranularity {
				return 0.95
			}
			return 0.85
		}
		// Sub-block random reads waste media bandwidth, but read
		// amplification is partially hidden by the device's internal
		// buffering, so the penalty is milder than for writes.
		frac := float64(gran) / float64(p.MediaGranularity)
		return 0.45 + 0.4*frac
	}
}

// granWriteEff returns the fraction of peak write bandwidth retained for
// the given pattern and access granularity, modeling XPBuffer merging.
func (p Params) granWriteEff(pattern mem.Pattern, gran int) float64 {
	if gran <= 0 {
		gran = mem.Line
	}
	switch pattern {
	case mem.Sequential:
		// Sequential stores merge into full media blocks. A small loss
		// remains for 64 B streams: limited buffer space occasionally
		// fails to merge (the paper's observed sequential-write drop).
		if gran < p.MediaGranularity {
			return 0.93
		}
		return 1.0
	case mem.InterleavedSeq:
		return 0.72
	default: // Random
		if gran >= p.MediaGranularity {
			if gran >= 2*p.MediaGranularity {
				return 1.0
			}
			return 0.95
		}
		// Unmergeable sub-block writes: media write amplification
		// media/gran, i.e. 4x for 64 B on 256 B media.
		return float64(gran) / float64(p.MediaGranularity)
	}
}

// ReadBW returns the deliverable read bandwidth in bytes/s for the
// device given the traffic pattern, access granularity in bytes, and the
// number of threads generating the traffic.
func (p Params) ReadBW(pattern mem.Pattern, gran, threads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	outstanding := p.ReadOutstanding
	if pattern == mem.Sequential {
		outstanding *= p.SeqPrefetchBoost
	}
	perThread := outstanding * mem.Line / (p.ReadLatencyNS * 1e-9)
	ceiling := p.PeakReadBW * p.granReadEff(pattern, gran)
	bw := float64(threads) * perThread
	if bw > ceiling {
		bw = ceiling
	}
	return bw
}

// writeContention returns the fraction of peak write bandwidth
// surviving write-queue contention from the given thread count.
func (p Params) writeContention(threads int) float64 {
	if threads <= p.WriteSaturationThreads {
		return 1
	}
	f := 1 - p.WriteContentionSlope*float64(threads-p.WriteSaturationThreads)
	if f < 0.75 {
		f = 0.75
	}
	return f
}

// WriteBW returns the deliverable write bandwidth in bytes/s.
func (p Params) WriteBW(pattern mem.Pattern, gran, threads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	perThread := p.WriteOutstanding * mem.Line / (p.WriteLatencyNS * 1e-9)
	ceiling := p.PeakWriteBW * p.granWriteEff(pattern, gran) * p.writeContention(threads)
	bw := float64(threads) * perThread
	if bw > ceiling {
		bw = ceiling
	}
	return bw
}

// streamDegrade interpolates a merge-dependent efficiency toward the
// unmergeable 64 B-random floor as the number of concurrent address
// streams grows. The Optane write-combining buffer (and, to a lesser
// degree, its read buffering) only merges a few streams at once; a
// workload interleaving many tensor streams — the CNN case study's
// miss phases — sees near-random media behavior even though each
// stream is individually sequential (Yang et al., FAST'20). One or two
// streams are unaffected, so the pure microbenchmarks keep their
// calibrated bandwidths.
func streamDegrade(base, floor float64, streams int) float64 {
	if streams <= 2 || base <= floor {
		return base
	}
	// The combining window holds only a few streams; thrashing sets in
	// quickly (fully degraded by ~4 concurrent streams).
	t := float64(streams-2) / 2
	if t > 1 {
		t = 1
	}
	return base - (base-floor)*t
}

// mediaRMWPenalty reflects that an unmerged sub-block write costs the
// media a read-modify-write of the whole 256 B block, so fully
// thrashed multi-stream writes land below even the plain random-write
// floor.
const mediaRMWPenalty = 0.85

// streamWriteEff is granWriteEff with multi-stream degradation.
func (p Params) streamWriteEff(pattern mem.Pattern, gran, streams int) float64 {
	base := p.granWriteEff(pattern, gran)
	if pattern == mem.Random {
		return base // already unmerged; no further penalty
	}
	return streamDegrade(base, mediaRMWPenalty*p.granWriteEff(mem.Random, mem.Line), streams)
}

// streamReadEff is granReadEff with multi-stream degradation.
func (p Params) streamReadEff(pattern mem.Pattern, gran, streams int) float64 {
	base := p.granReadEff(pattern, gran)
	if pattern == mem.Random {
		return base
	}
	return streamDegrade(base, p.granReadEff(mem.Random, mem.Line), streams)
}

// Model bundles the device classes of one socket (scaled systems share
// the same bandwidths: capacity scaling does not change channel counts).
type Model struct {
	DRAM  Params
	NVRAM Params
	// Sockets multiplies device ceilings for multi-socket runs where
	// the workload interleaves across sockets (the graph case study).
	Sockets int
}

// NewCascadeLake returns the paper's test platform model with the given
// number of active sockets.
func NewCascadeLake(sockets int) *Model {
	if sockets < 1 {
		sockets = 1
	}
	return &Model{DRAM: CascadeLakeDRAM(), NVRAM: OptaneDC512(), Sockets: sockets}
}

// scale multiplies a per-socket bandwidth by the socket count.
func (m *Model) scale(bw float64) float64 { return bw * float64(m.Sockets) }

// DRAMReadBW returns deliverable DRAM read bandwidth in bytes/s.
func (m *Model) DRAMReadBW(pattern mem.Pattern, gran, threads int) float64 {
	return m.scale(m.DRAM.ReadBW(pattern, gran, threads))
}

// DRAMWriteBW returns deliverable DRAM write bandwidth in bytes/s.
func (m *Model) DRAMWriteBW(pattern mem.Pattern, gran, threads int) float64 {
	return m.scale(m.DRAM.WriteBW(pattern, gran, threads))
}

// NVRAMReadBW returns deliverable NVRAM read bandwidth in bytes/s for
// a workload with the given number of concurrent address streams.
func (m *Model) NVRAMReadBW(pattern mem.Pattern, gran, threads, streams int) float64 {
	bw := m.scale(m.NVRAM.ReadBW(pattern, gran, threads))
	base := m.NVRAM.granReadEff(pattern, gran)
	if eff := m.NVRAM.streamReadEff(pattern, gran, streams); base > 0 {
		bw *= eff / base
	}
	return bw
}

// NVRAMWriteBW returns deliverable NVRAM write bandwidth in bytes/s.
func (m *Model) NVRAMWriteBW(pattern mem.Pattern, gran, threads, streams int) float64 {
	bw := m.scale(m.NVRAM.WriteBW(pattern, gran, threads))
	base := m.NVRAM.granWriteEff(pattern, gran)
	if eff := m.NVRAM.streamWriteEff(pattern, gran, streams); base > 0 {
		bw *= eff / base
	}
	return bw
}

// NVRAMReadBW2LM returns the NVRAM read bandwidth available to the 2LM
// miss handler. The IMC keeps many fills in flight regardless of CPU
// memory-level parallelism, so only the device ceiling applies (the
// CPU-side limit is accounted separately via DemandIssueBW).
func (m *Model) NVRAMReadBW2LM(pattern mem.Pattern, gran, streams int) float64 {
	p := m.NVRAM
	// Miss-handler scheduling caps 2LM streams at the interleaved-
	// sequential efficiency no matter how well the demand clusters.
	eff := p.streamReadEff(pattern, gran, streams)
	if cap := p.streamReadEff(mem.InterleavedSeq, gran, streams); eff > cap {
		eff = cap
	}
	return m.scale(p.PeakReadBW * eff)
}

// NVRAMWriteBW2LM returns the NVRAM write bandwidth available to the
// 2LM miss handler's write-backs. Queue depth is the IMC's, but the
// write-queue contention still scales with the CPU threads generating
// the miss stream (the paper's Figure 4b: 4 threads gain ~1 GB/s over
// 24).
func (m *Model) NVRAMWriteBW2LM(pattern mem.Pattern, gran, cpuThreads, streams int) float64 {
	p := m.NVRAM
	eff := p.streamWriteEff(pattern, gran, streams)
	if cap := p.streamWriteEff(mem.InterleavedSeq, gran, streams); eff > cap {
		eff = cap
	}
	return m.scale(p.PeakWriteBW * eff * p.writeContention(cpuThreads))
}

// DemandIssueBW returns the CPU-side issue bandwidth limit in bytes/s
// for demand traffic whose average service latency is latNS: it bounds
// throughput in latency-dominated (few-thread) regimes. mlp overrides
// the per-thread outstanding-request count; 0 selects the hardware
// limit (line-fill buffers). Dependent-access workloads like graph
// traversal sustain far less memory-level parallelism than the
// hardware allows.
func (m *Model) DemandIssueBW(pattern mem.Pattern, threads int, latNS, mlp float64) float64 {
	if threads <= 0 {
		threads = 1
	}
	if latNS <= 0 {
		latNS = m.DRAM.ReadLatencyNS
	}
	outstanding := mlp
	if outstanding <= 0 {
		outstanding = m.DRAM.ReadOutstanding
		if pattern == mem.Sequential {
			outstanding *= m.DRAM.SeqPrefetchBoost
		}
	}
	return float64(threads) * outstanding * mem.Line / (latNS * 1e-9)
}
