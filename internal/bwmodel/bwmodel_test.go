package bwmodel

import (
	"testing"

	"twolm/internal/mem"
)

// TestNVRAMReadSaturation checks the paper's Figure 2a anchors:
// sequential read bandwidth scales with threads and saturates near
// 30 GB/s by 8 threads.
func TestNVRAMReadSaturation(t *testing.T) {
	p := OptaneDC512()
	bw8 := p.ReadBW(mem.Sequential, mem.Line, 8)
	bw24 := p.ReadBW(mem.Sequential, mem.Line, 24)
	if bw8 < 28*mem.GB || bw8 > 32*mem.GB {
		t.Errorf("sequential read @8 threads = %.1f GB/s, want ~30", bw8/mem.GB)
	}
	if bw24 != bw8 {
		t.Errorf("read bandwidth should be flat past saturation: %.1f vs %.1f", bw24/mem.GB, bw8/mem.GB)
	}
	// Below saturation, scaling should be roughly linear.
	bw1 := p.ReadBW(mem.Sequential, mem.Line, 1)
	bw2 := p.ReadBW(mem.Sequential, mem.Line, 2)
	if bw2 < 1.9*bw1 {
		t.Errorf("2-thread read %.1f not ~2x 1-thread %.1f", bw2/mem.GB, bw1/mem.GB)
	}
}

// TestNVRAMWritePeak checks the Figure 2b anchors: write bandwidth
// peaks near 4 threads around 11 GB/s and declines slightly beyond.
func TestNVRAMWritePeak(t *testing.T) {
	p := OptaneDC512()
	bw4 := p.WriteBW(mem.Sequential, mem.Line, 4)
	bw24 := p.WriteBW(mem.Sequential, mem.Line, 24)
	if bw4 < 9*mem.GB || bw4 > 12*mem.GB {
		t.Errorf("sequential NT write @4 threads = %.1f GB/s, want ~10.6", bw4/mem.GB)
	}
	if bw24 >= bw4 {
		t.Errorf("write bandwidth should decline past 4 threads: %.2f !< %.2f", bw24/mem.GB, bw4/mem.GB)
	}
	if bw24 < 0.75*bw4 {
		t.Errorf("write decline too steep: %.2f vs peak %.2f", bw24/mem.GB, bw4/mem.GB)
	}
}

// TestWriteGranularityCliff: random 64 B writes cannot merge into 256 B
// media blocks and lose ~4x bandwidth; >=256 B granularity is fine.
func TestWriteGranularityCliff(t *testing.T) {
	p := OptaneDC512()
	small := p.WriteBW(mem.Random, 64, 4)
	big := p.WriteBW(mem.Random, 256, 4)
	if ratio := big / small; ratio < 3 || ratio > 5 {
		t.Errorf("random 256B/64B write ratio = %.2f, want ~4 (media amplification)", ratio)
	}
	// Sequential 64 B streams merge and should be near peak.
	seq := p.WriteBW(mem.Sequential, 64, 4)
	if seq < 0.85*p.PeakWriteBW {
		t.Errorf("sequential 64B writes should merge: %.1f GB/s", seq/mem.GB)
	}
}

// TestReadGranularityMonotonic: larger random granularity never hurts.
func TestReadGranularityMonotonic(t *testing.T) {
	p := OptaneDC512()
	prev := 0.0
	for _, g := range []int{64, 128, 256, 512} {
		bw := p.ReadBW(mem.Random, g, 24)
		if bw < prev {
			t.Errorf("random read bandwidth not monotonic in granularity at %dB: %.2f < %.2f", g, bw/mem.GB, prev/mem.GB)
		}
		prev = bw
	}
}

// TestInterleavedSeqBetween: the 2LM miss stream should fall between
// random and pure sequential performance.
func TestInterleavedSeqBetween(t *testing.T) {
	p := OptaneDC512()
	seq := p.ReadBW(mem.Sequential, 64, 24)
	il := p.ReadBW(mem.InterleavedSeq, 64, 24)
	rnd := p.ReadBW(mem.Random, 64, 24)
	if !(rnd < il && il < seq) {
		t.Errorf("want random (%.1f) < interleaved (%.1f) < sequential (%.1f)", rnd/mem.GB, il/mem.GB, seq/mem.GB)
	}
	// The paper's 2LM ceiling: ~23 GB/s read (~75% of 30 GB/s).
	if il < 21*mem.GB || il > 25*mem.GB {
		t.Errorf("interleaved-seq NVRAM read = %.1f GB/s, want ~23", il/mem.GB)
	}
}

// Test2LMWriteCeiling: the paper's best 2LM write is ~8 GB/s (72% of
// the 11 GB/s device peak).
func Test2LMWriteCeiling(t *testing.T) {
	p := OptaneDC512()
	il := p.WriteBW(mem.InterleavedSeq, 64, 24)
	if il < 7*mem.GB || il > 9*mem.GB {
		t.Errorf("interleaved-seq NVRAM write = %.1f GB/s, want ~8", il/mem.GB)
	}
}

func TestDRAMFasterThanNVRAM(t *testing.T) {
	d, n := CascadeLakeDRAM(), OptaneDC512()
	for _, pat := range []mem.Pattern{mem.Sequential, mem.Random} {
		for _, th := range []int{1, 4, 24} {
			if d.ReadBW(pat, 64, th) <= n.ReadBW(pat, 64, th) {
				t.Errorf("DRAM read not faster than NVRAM (%v, %d threads)", pat, th)
			}
			if d.WriteBW(pat, 64, th) <= n.WriteBW(pat, 64, th) {
				t.Errorf("DRAM write not faster than NVRAM (%v, %d threads)", pat, th)
			}
		}
	}
}

// TestAsymmetry: NVRAM read bandwidth is roughly 3x its write bandwidth.
func TestAsymmetry(t *testing.T) {
	p := OptaneDC512()
	r := p.ReadBW(mem.Sequential, 64, 24)
	w := p.WriteBW(mem.Sequential, 64, 24)
	if ratio := r / w; ratio < 2 || ratio > 4.5 {
		t.Errorf("read/write asymmetry = %.2f, want ~3", ratio)
	}
}

func TestModelSocketScaling(t *testing.T) {
	m1 := NewCascadeLake(1)
	m2 := NewCascadeLake(2)
	bw1 := m1.NVRAMReadBW(mem.Sequential, 64, 24, 1)
	bw2 := m2.NVRAMReadBW(mem.Sequential, 64, 24, 1)
	if bw2 != 2*bw1 {
		t.Errorf("2-socket bandwidth %.1f != 2x 1-socket %.1f", bw2/mem.GB, bw1/mem.GB)
	}
	if NewCascadeLake(0).Sockets != 1 {
		t.Error("socket count should clamp to 1")
	}
}

func TestDemandIssueBW(t *testing.T) {
	m := NewCascadeLake(1)
	// More threads issue more.
	if m.DemandIssueBW(mem.Random, 8, 100, 0) <= m.DemandIssueBW(mem.Random, 1, 100, 0) {
		t.Error("issue bandwidth should grow with threads")
	}
	// Higher latency issues less.
	if m.DemandIssueBW(mem.Random, 4, 300, 0) >= m.DemandIssueBW(mem.Random, 4, 100, 0) {
		t.Error("issue bandwidth should fall with latency")
	}
	// Sequential prefetch helps.
	if m.DemandIssueBW(mem.Sequential, 4, 100, 0) <= m.DemandIssueBW(mem.Random, 4, 100, 0) {
		t.Error("sequential issue should beat random")
	}
	// Defaults for degenerate arguments.
	if m.DemandIssueBW(mem.Random, 0, 0, 0) <= 0 {
		t.Error("degenerate arguments should still produce a positive bound")
	}
	// A dependency-limited workload issues less than the hardware MLP.
	if m.DemandIssueBW(mem.Random, 8, 100, 1.5) >= m.DemandIssueBW(mem.Random, 8, 100, 0) {
		t.Error("reduced MLP should lower the issue bound")
	}
}

// TestStreamDegradation: sequential NVRAM bandwidth falls toward the
// random floor as streams multiply; random traffic is unaffected; one
// or two streams keep the calibrated values.
func TestStreamDegradation(t *testing.T) {
	m := NewCascadeLake(1)
	seq1 := m.NVRAMWriteBW(mem.Sequential, 64, 4, 1)
	seq2 := m.NVRAMWriteBW(mem.Sequential, 64, 4, 2)
	seq6 := m.NVRAMWriteBW(mem.Sequential, 64, 4, 6)
	if seq1 != seq2 {
		t.Errorf("two streams should keep full bandwidth: %.1f vs %.1f", seq1/mem.GB, seq2/mem.GB)
	}
	if seq6 >= seq2/2 {
		t.Errorf("six streams should collapse sequential writes: %.2f vs %.2f GB/s", seq6/mem.GB, seq2/mem.GB)
	}
	rand64 := m.NVRAMWriteBW(mem.Random, 64, 4, 1)
	if seq6 >= rand64 {
		// Thrashed merging plus media read-modify-write lands below
		// even plain random writes.
		t.Errorf("thrashed sequential (%.2f) should not beat random (%.2f)", seq6/mem.GB, rand64/mem.GB)
	}
	// Random traffic has no merging to lose.
	r1 := m.NVRAMReadBW(mem.Random, 64, 24, 1)
	r8 := m.NVRAMReadBW(mem.Random, 64, 24, 8)
	if r1 != r8 {
		t.Errorf("random reads changed with streams: %.2f vs %.2f", r1/mem.GB, r8/mem.GB)
	}
	// The 2LM variants degrade the same way.
	il2 := m.NVRAMReadBW2LM(mem.InterleavedSeq, 64, 2)
	il6 := m.NVRAMReadBW2LM(mem.InterleavedSeq, 64, 6)
	if il6 >= il2 {
		t.Errorf("2LM read bandwidth did not degrade with streams: %.2f vs %.2f", il6/mem.GB, il2/mem.GB)
	}
}

func TestThreadClamping(t *testing.T) {
	p := OptaneDC512()
	if p.ReadBW(mem.Random, 64, 0) != p.ReadBW(mem.Random, 64, 1) {
		t.Error("0 threads should behave as 1")
	}
	if p.WriteBW(mem.Random, 64, -3) != p.WriteBW(mem.Random, 64, 1) {
		t.Error("negative threads should behave as 1")
	}
	if p.ReadBW(mem.Random, 0, 4) != p.ReadBW(mem.Random, mem.Line, 4) {
		t.Error("0 granularity should behave as one line")
	}
}
