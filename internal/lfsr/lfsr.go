// Package lfsr implements maximum-length Galois linear feedback shift
// registers.
//
// The paper's benchmark generator (KernelBenchmarks.jl) uses a
// maximum-length LFSR to iterate pseudo-randomly over an array while
// touching every index exactly once — a property ordinary PRNG shuffles
// only get with O(n) extra memory. A maximum-length LFSR over w bits
// visits every value in [1, 2^w-1] exactly once before repeating; the
// generator maps that cycle (plus an explicit zero) onto array indices.
package lfsr

import "fmt"

// taps holds feedback masks producing maximum-length sequences for
// register widths 2..32. Taps are from the standard Xilinx/maximal-LFSR
// tables, expressed as Galois feedback masks (bit i set means tap at
// position i+1).
var taps = [33]uint32{
	2:  0x3,
	3:  0x6,
	4:  0xC,
	5:  0x14,
	6:  0x30,
	7:  0x60,
	8:  0xB8,
	9:  0x110,
	10: 0x240,
	11: 0x500,
	12: 0xE08,
	13: 0x1C80,
	14: 0x3802,
	15: 0x6000,
	16: 0xD008,
	17: 0x12000,
	18: 0x20400,
	19: 0x72000,
	20: 0x90000,
	21: 0x140000,
	22: 0x300000,
	23: 0x420000,
	24: 0xE10000,
	25: 0x1200000,
	26: 0x3880000,
	27: 0x7200000,
	28: 0x9000000,
	29: 0x14000000,
	30: 0x32800000,
	31: 0x48000000,
	32: 0xA3000000,
}

// MinWidth and MaxWidth bound the supported register widths.
const (
	MinWidth = 2
	MaxWidth = 32
)

// LFSR is a maximum-length Galois LFSR over a fixed width. The zero
// value is not usable; construct with New.
type LFSR struct {
	state uint32
	mask  uint32
	width uint
}

// New returns an LFSR of the given width (2..32) seeded with seed.
// The seed is folded into the register's nonzero state space.
func New(width uint, seed uint32) (*LFSR, error) {
	if width < MinWidth || width > MaxWidth {
		return nil, fmt.Errorf("lfsr: width %d out of range [%d, %d]", width, MinWidth, MaxWidth)
	}
	l := &LFSR{mask: taps[width], width: width}
	l.Seed(seed)
	return l, nil
}

// Seed resets the register state derived from seed; state zero (the
// LFSR's fixed point) is avoided.
func (l *LFSR) Seed(seed uint32) {
	s := seed
	if l.width < 32 {
		s &= (1 << l.width) - 1
	}
	if s == 0 {
		s = 1
	}
	l.state = s
}

// Width returns the register width in bits.
func (l *LFSR) Width() uint { return l.width }

// State returns the current register contents.
func (l *LFSR) State() uint32 { return l.state }

// Next advances the register one step and returns the new state. The
// returned values cycle through every nonzero width-bit value exactly
// once per period.
func (l *LFSR) Next() uint32 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= l.mask
	}
	return l.state
}

// Period returns the sequence period, 2^width - 1.
func (l *LFSR) Period() uint64 {
	return (uint64(1) << l.width) - 1
}

// WidthFor returns the smallest supported register width whose period
// covers at least n values, i.e. 2^w - 1 >= n.
func WidthFor(n uint64) (uint, error) {
	if n == 0 {
		return 0, fmt.Errorf("lfsr: WidthFor(0)")
	}
	for w := uint(MinWidth); w <= MaxWidth; w++ {
		if (uint64(1)<<w)-1 >= n {
			return w, nil
		}
	}
	return 0, fmt.Errorf("lfsr: %d exceeds maximum period", n)
}

// Sequence visits every index in [0, n) exactly once in pseudo-random
// order, calling fn for each. It uses the smallest LFSR covering n and
// skips out-of-range states (at most half of the steps are skipped, by
// choice of width). Index 0, which the LFSR cannot produce, is visited
// first.
func Sequence(n uint64, seed uint32, fn func(idx uint64)) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		fn(0)
		return nil
	}
	w, err := WidthFor(n - 1)
	if err != nil {
		return err
	}
	l, err := New(w, seed)
	if err != nil {
		return err
	}
	fn(0)
	emitted := uint64(1)
	period := l.Period()
	for i := uint64(0); i < period && emitted < n; i++ {
		v := uint64(l.Next())
		if v < n {
			fn(v)
			emitted++
		}
	}
	if emitted != n {
		return fmt.Errorf("lfsr: sequence emitted %d of %d indices", emitted, n)
	}
	return nil
}
