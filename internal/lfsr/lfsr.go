// Package lfsr implements maximum-length Galois linear feedback shift
// registers.
//
// The paper's benchmark generator (KernelBenchmarks.jl) uses a
// maximum-length LFSR to iterate pseudo-randomly over an array while
// touching every index exactly once — a property ordinary PRNG shuffles
// only get with O(n) extra memory. A maximum-length LFSR over w bits
// visits every value in [1, 2^w-1] exactly once before repeating; the
// generator maps that cycle (plus an explicit zero) onto array indices.
package lfsr

import "fmt"

// taps holds feedback masks producing maximum-length sequences for
// register widths 2..32. Taps are from the standard Xilinx/maximal-LFSR
// tables, expressed as Galois feedback masks (bit i set means tap at
// position i+1).
var taps = [33]uint32{
	2:  0x3,
	3:  0x6,
	4:  0xC,
	5:  0x14,
	6:  0x30,
	7:  0x60,
	8:  0xB8,
	9:  0x110,
	10: 0x240,
	11: 0x500,
	12: 0xE08,
	13: 0x1C80,
	14: 0x3802,
	15: 0x6000,
	16: 0xD008,
	17: 0x12000,
	18: 0x20400,
	19: 0x72000,
	20: 0x90000,
	21: 0x140000,
	22: 0x300000,
	23: 0x420000,
	24: 0xE10000,
	25: 0x1200000,
	26: 0x3880000,
	27: 0x7200000,
	28: 0x9000000,
	29: 0x14000000,
	30: 0x32800000,
	31: 0x48000000,
	32: 0xA3000000,
}

// MinWidth and MaxWidth bound the supported register widths.
const (
	MinWidth = 2
	MaxWidth = 32
)

// LFSR is a maximum-length Galois LFSR over a fixed width. The zero
// value is not usable; construct with New.
type LFSR struct {
	state uint32
	mask  uint32
	width uint
}

// New returns an LFSR of the given width (2..32) seeded with seed.
// The seed is folded into the register's nonzero state space.
func New(width uint, seed uint32) (*LFSR, error) {
	if width < MinWidth || width > MaxWidth {
		return nil, fmt.Errorf("lfsr: width %d out of range [%d, %d]", width, MinWidth, MaxWidth)
	}
	l := &LFSR{mask: taps[width], width: width}
	l.Seed(seed)
	return l, nil
}

// Seed resets the register state derived from seed; state zero (the
// LFSR's fixed point) is avoided.
func (l *LFSR) Seed(seed uint32) {
	s := seed
	if l.width < 32 {
		s &= (1 << l.width) - 1
	}
	if s == 0 {
		s = 1
	}
	l.state = s
}

// Width returns the register width in bits.
func (l *LFSR) Width() uint { return l.width }

// State returns the current register contents.
func (l *LFSR) State() uint32 { return l.state }

// Next advances the register one step and returns the new state. The
// returned values cycle through every nonzero width-bit value exactly
// once per period.
func (l *LFSR) Next() uint32 {
	// Branchless Galois step: the feedback mask is applied under an
	// all-ones or all-zeros mask derived from the output bit. The output
	// bit of a maximum-length register is an even coin flip, so a branch
	// here would mispredict every other step.
	s := l.state
	l.state = (s >> 1) ^ (l.mask & -(s & 1))
	return l.state
}

// Period returns the sequence period, 2^width - 1.
func (l *LFSR) Period() uint64 {
	return (uint64(1) << l.width) - 1
}

// WidthFor returns the smallest supported register width whose period
// covers at least n values, i.e. 2^w - 1 >= n.
func WidthFor(n uint64) (uint, error) {
	if n == 0 {
		return 0, fmt.Errorf("lfsr: WidthFor(0)")
	}
	for w := uint(MinWidth); w <= MaxWidth; w++ {
		if (uint64(1)<<w)-1 >= n {
			return w, nil
		}
	}
	return 0, fmt.Errorf("lfsr: %d exceeds maximum period", n)
}

// Stream produces the same index sequence as Sequence — every index in
// [0, n) exactly once, zero first — in caller-sized chunks instead of a
// callback per index. The skip test (an out-of-range state is an uneven
// coin flip) is a masked cursor bump rather than a branch, and the
// consumer's loop over the filled buffer is branch free too, which is
// why the hot random pass uses this instead of Sequence. The zero value
// is not usable; construct with NewStream.
type Stream struct {
	state   uint32
	mask    uint32
	n       uint64
	emitted uint64
	steps   uint64
	period  uint64
	first   bool // index 0 not yet emitted
}

// NewStream returns a Stream over [0, n) seeded like Sequence. The
// value is self-contained and lives wherever the caller puts it — no
// heap state, so the random-path benchmarks stay at 0 allocs/op.
//
//alloc:cold stream setup runs once per pass, not per line; its error paths may format
func NewStream(n uint64, seed uint32) (Stream, error) {
	if n <= 1 {
		return Stream{n: n, first: n == 1}, nil
	}
	w, err := WidthFor(n - 1)
	if err != nil {
		return Stream{}, err
	}
	state := seed
	if w < 32 {
		state &= (1 << w) - 1
	}
	if state == 0 {
		state = 1
	}
	return Stream{
		state:  state,
		mask:   taps[w],
		n:      n,
		period: (uint64(1) << w) - 1,
		first:  true,
	}, nil
}

// Fill writes up to len(buf) further indices into buf and returns the
// count written; zero means the sequence is exhausted. An error means
// the register cycled without covering [0, n) — impossible for a
// well-formed width table, mirroring Sequence's invariant check.
func (s *Stream) Fill(buf []uint32) (int, error) {
	if s.emitted == s.n || len(buf) == 0 {
		return 0, nil
	}
	c := 0
	if s.first {
		buf[0] = 0
		c = 1
		s.first = false
		s.emitted = 1
		if s.emitted == s.n {
			return c, nil
		}
	}
	limit := len(buf)
	if rem := s.n - s.emitted; uint64(limit-c) > rem {
		limit = c + int(rem)
	}
	cStart := c
	state, mask, n := s.state, s.mask, s.n
	steps, period := s.steps, s.period
	for c < limit && steps < period {
		// Branchless Galois step plus a masked cursor bump: the store
		// is unconditional and the slot is overwritten when the state
		// falls outside [1, n).
		state = (state >> 1) ^ (mask & -(state & 1))
		steps++
		buf[c] = state
		if uint64(state) < n {
			c++
		}
	}
	s.state, s.steps = state, steps
	s.emitted += uint64(c - cStart)
	if c == 0 && s.emitted < s.n {
		return 0, s.stallError()
	}
	return c, nil
}

// stallError reports a stream that stopped producing indices before
// covering [0, n) — impossible for a correct LFSR, so the formatting
// allocation lives behind a cold boundary off the Fill fast path.
//
//alloc:cold defensive error path: a correct LFSR never stalls mid-stream
func (s *Stream) stallError() error {
	return fmt.Errorf("lfsr: stream emitted %d of %d indices", s.emitted, s.n)
}

// Sequence visits every index in [0, n) exactly once in pseudo-random
// order, calling fn for each. It uses the smallest LFSR covering n and
// skips out-of-range states (at most half of the steps are skipped, by
// choice of width). Index 0, which the LFSR cannot produce, is visited
// first.
//
// The register lives in locals rather than behind a *LFSR so the call
// is allocation free — the random-path benchmarks assert 0 allocs/op
// through here.
func Sequence(n uint64, seed uint32, fn func(idx uint64)) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		fn(0)
		return nil
	}
	w, err := WidthFor(n - 1)
	if err != nil {
		return err
	}
	mask := taps[w]
	state := seed
	if w < 32 {
		state &= (1 << w) - 1
	}
	if state == 0 {
		state = 1
	}
	fn(0)
	emitted := uint64(1)
	period := (uint64(1) << w) - 1
	for i := uint64(0); i < period && emitted < n; i++ {
		// Branchless Galois step — the feedback bit is an even coin
		// flip, so an if on it would mispredict every other step.
		state = (state >> 1) ^ (mask & -(state & 1))
		if v := uint64(state); v < n {
			fn(v)
			emitted++
		}
	}
	if emitted != n {
		return fmt.Errorf("lfsr: sequence emitted %d of %d indices", emitted, n)
	}
	return nil
}
