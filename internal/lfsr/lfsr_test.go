package lfsr

import (
	"testing"
	"testing/quick"
)

// TestMaximumLength verifies that every supported width produces a
// maximum-length sequence: period 2^w - 1 with no repeated states.
func TestMaximumLength(t *testing.T) {
	for w := uint(MinWidth); w <= 20; w++ { // exhaustive up to 2^20
		l, err := New(w, 1)
		if err != nil {
			t.Fatalf("New(%d): %v", w, err)
		}
		period := l.Period()
		seen := make([]bool, period+1)
		for i := uint64(0); i < period; i++ {
			v := l.Next()
			if v == 0 {
				t.Fatalf("width %d: state reached 0 at step %d", w, i)
			}
			if uint64(v) > period {
				t.Fatalf("width %d: state %d out of range", w, v)
			}
			if seen[v] {
				t.Fatalf("width %d: state %d repeated before period at step %d", w, v, i)
			}
			seen[v] = true
		}
		if l.State() != 1 {
			// After exactly one period the register returns to its seed.
			t.Fatalf("width %d: state after full period = %d, want seed 1", w, l.State())
		}
	}
}

// TestLargerWidthsCycleBack spot-checks that wide registers return to
// the seed only after visiting many distinct states (we cannot afford
// the full 2^32 period, so check a prefix for collisions).
func TestLargerWidthsNoEarlyRepeat(t *testing.T) {
	for _, w := range []uint{24, 28, 32} {
		l, err := New(w, 12345)
		if err != nil {
			t.Fatal(err)
		}
		seed := l.State()
		const steps = 1 << 16
		for i := 0; i < steps; i++ {
			if l.Next() == seed {
				t.Fatalf("width %d: returned to seed after only %d steps", w, i+1)
			}
		}
	}
}

func TestNewRejectsBadWidth(t *testing.T) {
	for _, w := range []uint{0, 1, 33, 64} {
		if _, err := New(w, 1); err == nil {
			t.Errorf("New(%d) accepted an out-of-range width", w)
		}
	}
}

func TestSeedAvoidsZero(t *testing.T) {
	l, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("seed 0 left the register in its fixed point")
	}
	l.Seed(256) // 256 & 0xff == 0
	if l.State() == 0 {
		t.Fatal("masked seed left the register at 0")
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint
	}{
		{1, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21},
	}
	for _, c := range cases {
		got, err := WidthFor(c.n)
		if err != nil {
			t.Fatalf("WidthFor(%d): %v", c.n, err)
		}
		if got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if _, err := WidthFor(0); err == nil {
		t.Error("WidthFor(0) should error")
	}
	if _, err := WidthFor(1 << 40); err == nil {
		t.Error("WidthFor(2^40) should exceed the maximum period")
	}
}

// TestSequenceVisitsEachOnce is the core property the paper relies on:
// pseudo-random iteration touching every index exactly once.
func TestSequenceVisitsEachOnce(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 5, 64, 100, 1024, 4099} {
		seen := make(map[uint64]int)
		var order []uint64
		if err := Sequence(n, 7, func(i uint64) {
			seen[i]++
			order = append(order, i)
		}); err != nil {
			t.Fatalf("Sequence(%d): %v", n, err)
		}
		if uint64(len(seen)) != n {
			t.Fatalf("Sequence(%d) visited %d distinct indices", n, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("Sequence(%d): index %d visited %d times", n, i, c)
			}
			if i >= n {
				t.Fatalf("Sequence(%d): index %d out of range", n, i)
			}
		}
	}
}

// TestSequenceIsPermutationProperty checks the permutation property on
// random sizes with testing/quick.
func TestSequenceIsPermutationProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint32) bool {
		n := uint64(nRaw%5000) + 1
		seen := make([]bool, n)
		count := uint64(0)
		if err := Sequence(n, seed, func(i uint64) {
			if i >= n || seen[i] {
				return
			}
			seen[i] = true
			count++
		}); err != nil {
			return false
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSequenceNotSequential sanity-checks that the order is actually
// shuffled rather than ascending.
func TestSequenceNotSequential(t *testing.T) {
	var order []uint64
	if err := Sequence(1024, 99, func(i uint64) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	ascending := 0
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1]+1 {
			ascending++
		}
	}
	if ascending > len(order)/10 {
		t.Fatalf("order looks sequential: %d/%d ascending steps", ascending, len(order))
	}
}

func BenchmarkNext(b *testing.B) {
	l, _ := New(32, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Next()
	}
}

// TestStreamMatchesSequence pins the Stream contract: for any n and
// seed, Fill-ing through a Stream in arbitrary chunk sizes emits
// exactly the index sequence Sequence produces, in the same order.
func TestStreamMatchesSequence(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		seed uint32
		buf  int
	}{
		{0, 1, 8}, {1, 1, 8}, {2, 7, 1}, {3, 0, 2}, {100, 0xBEEF, 7},
		{1000, 0x2B1A, 64}, {4096, 42, 2048}, {5000, 0xFFFF, 4096},
	} {
		want := make([]uint64, 0, tc.n)
		if err := Sequence(tc.n, tc.seed, func(idx uint64) {
			want = append(want, idx)
		}); err != nil {
			t.Fatal(err)
		}
		st, err := NewStream(tc.n, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, 0, tc.n)
		buf := make([]uint32, tc.buf)
		for {
			k, err := st.Fill(buf)
			if err != nil {
				t.Fatal(err)
			}
			if k == 0 {
				break
			}
			for _, v := range buf[:k] {
				got = append(got, uint64(v))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d seed=%#x buf=%d: got %d indices, want %d",
				tc.n, tc.seed, tc.buf, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d seed=%#x buf=%d: index %d is %d, want %d",
					tc.n, tc.seed, tc.buf, i, got[i], want[i])
			}
		}
		// Exhausted streams keep returning 0 without error.
		if k, err := st.Fill(buf); k != 0 || err != nil {
			t.Fatalf("n=%d: exhausted Fill returned (%d, %v)", tc.n, k, err)
		}
	}
}
