// Graph conversions — the in-simulator analog of the Galois
// graph-converter the paper's inputs pass through ("Both were
// processed using the provided graph-converter in Galois"): transpose
// for pull-style algorithms, symmetrization for undirected kernels,
// and degree statistics for input characterization.

package graph

import "sort"

// Transpose returns the graph with every edge reversed (the in-edge
// CSR pull-style algorithms need).
func (g *Graph) Transpose() (*Graph, error) {
	n := g.NumNodes()
	src := make([]uint32, 0, g.NumEdges())
	dst := make([]uint32, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			src = append(src, v)
			dst = append(dst, uint32(u))
		}
	}
	return FromEdges(g.Name+"-T", n, src, dst)
}

// Undirected returns the symmetric closure: for every edge (u,v), both
// (u,v) and (v,u) are present exactly once (duplicates and self-loops
// collapse).
func (g *Graph) Undirected() (*Graph, error) {
	n := g.NumNodes()
	type edge struct{ u, v uint32 }
	seen := make(map[edge]bool, 2*g.NumEdges())
	src := make([]uint32, 0, 2*g.NumEdges())
	dst := make([]uint32, 0, 2*g.NumEdges())
	add := func(u, v uint32) {
		if u == v {
			return
		}
		e := edge{u, v}
		if seen[e] {
			return
		}
		seen[e] = true
		src = append(src, u)
		dst = append(dst, v)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			add(uint32(u), v)
			add(v, uint32(u))
		}
	}
	return FromEdges(g.Name+"-sym", n, src, dst)
}

// DegreeStats summarizes an out-degree distribution.
type DegreeStats struct {
	Min, Max, Median int
	Mean             float64
	// P99 is the 99th-percentile out-degree; the gap between P99 and
	// Max characterizes power-law inputs like the paper's.
	P99 int
	// Isolated counts nodes with no out-edges.
	Isolated int
}

// Stats computes the out-degree distribution summary.
func (g *Graph) Stats() DegreeStats {
	n := g.NumNodes()
	degs := make([]int, n)
	var sum int
	isolated := 0
	for u := 0; u < n; u++ {
		d := g.OutDegree(uint32(u))
		degs[u] = d
		sum += d
		if d == 0 {
			isolated++
		}
	}
	sort.Ints(degs)
	st := DegreeStats{
		Min:      degs[0],
		Max:      degs[n-1],
		Median:   degs[n/2],
		Mean:     float64(sum) / float64(n),
		P99:      degs[n-1-n/100],
		Isolated: isolated,
	}
	return st
}
