package graph

import (
	"testing"

	"twolm/internal/mem"
)

func TestFromEdgesBuildsValidCSR(t *testing.T) {
	src := []uint32{0, 0, 1, 2, 2, 2}
	dst := []uint32{1, 2, 2, 0, 1, 3}
	g, err := FromEdges("tiny", 4, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 6 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 3 || g.OutDegree(3) != 0 {
		t.Errorf("degrees wrong: %v", g.Offsets)
	}
	nbrs := g.Neighbors(2)
	if len(nbrs) != 3 || nbrs[0] != 0 || nbrs[1] != 1 || nbrs[2] != 3 {
		t.Errorf("neighbors of 2 = %v, want sorted [0 1 3]", nbrs)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges("x", 2, []uint32{0}, []uint32{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromEdges("x", 2, []uint32{5}, []uint32{0}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := FromEdges("x", 2, []uint32{0}, []uint32{5}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestKroneckerShape(t *testing.T) {
	g, err := Kronecker(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1024 {
		t.Errorf("nodes = %d, want 1024", g.NumNodes())
	}
	if g.NumEdges() != 8*1024 {
		t.Errorf("edges = %d, want 8192", g.NumEdges())
	}
	// R-MAT produces a skewed degree distribution: the max-degree node
	// should far exceed the average degree.
	maxDeg := g.OutDegree(g.MaxOutDegreeNode())
	if maxDeg < 4*8 {
		t.Errorf("max degree %d not skewed (avg 8)", maxDeg)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a, _ := Kronecker(8, 4, 7)
	b, _ := Kronecker(8, 4, 7)
	if a.Bytes() != b.Bytes() || a.Offsets[100] != b.Offsets[100] {
		t.Error("same seed produced different graphs")
	}
	c, _ := Kronecker(8, 4, 8)
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same && len(a.Edges) == len(c.Edges) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestKroneckerRejectsBadParams(t *testing.T) {
	if _, err := Kronecker(0, 8, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Kronecker(31, 8, 1); err == nil {
		t.Error("scale 31 accepted")
	}
	if _, err := Kronecker(8, 0, 1); err == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestWebLikeShape(t *testing.T) {
	g, err := WebLike(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1024 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Error("no edges")
	}
}

func TestBytesMatchesCSRSize(t *testing.T) {
	g, _ := Kronecker(8, 4, 1)
	want := uint64(len(g.Offsets)+len(g.Edges)) * 4
	if g.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", g.Bytes(), want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _ := Kronecker(6, 4, 1)
	g.Edges[0] = uint32(g.NumNodes() + 5)
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g2, _ := Kronecker(6, 4, 1)
	g2.Offsets[3] = g2.Offsets[4] + 1
	if err := g2.Validate(); err == nil {
		t.Error("non-monotone offsets accepted")
	}
}

func TestPlaceAndAddrs(t *testing.T) {
	g, _ := Kronecker(6, 4, 1)
	next := uint64(0x1000)
	alloc := func(size uint64) (mem.Region, error) {
		r := mem.Region{Base: next, Size: mem.AlignUp(size, mem.Line)}
		next += r.Size
		return r, nil
	}
	l, err := g.Place(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if l.OffsetAddr(1) != l.Offsets.Base+4 {
		t.Error("OffsetAddr arithmetic wrong")
	}
	if l.EdgeAddr(2) != l.Edges.Base+8 {
		t.Error("EdgeAddr arithmetic wrong")
	}
	if l.Offsets.End() > l.Edges.Base {
		t.Error("regions overlap")
	}
}

func TestMaxOutDegreeNode(t *testing.T) {
	g, _ := FromEdges("t", 3, []uint32{0, 1, 1, 1}, []uint32{1, 0, 2, 2})
	if got := g.MaxOutDegreeNode(); got != 1 {
		t.Errorf("MaxOutDegreeNode = %d, want 1", got)
	}
}
