// Package graph provides the graph substrate for the paper's Section
// VI case study: compressed sparse row (CSR) graphs, a Graph500-style
// Kronecker (R-MAT) generator standing in for kron30, and a heavier-
// tailed variant standing in for the wdc12 web crawl. Graphs here hold
// real topology — the analytics kernels compute real results on them
// while the memory simulator observes the traffic.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"twolm/internal/mem"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	// Name identifies the input in reports (e.g. "kron21").
	Name string
	// Offsets has length NumNodes+1; the out-neighbors of node u are
	// Edges[Offsets[u]:Offsets[u+1]].
	Offsets []uint32
	// Edges holds destination node IDs.
	Edges []uint32
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u uint32) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns the out-neighbor slice of node u (shared backing
// array; callers must not mutate).
func (g *Graph) Neighbors(u uint32) []uint32 {
	return g.Edges[g.Offsets[u]:g.Offsets[u+1]]
}

// Bytes returns the CSR binary size: the "graph binary" the paper
// reports (507 GB for wdc12, 73 GB for kron30).
func (g *Graph) Bytes() uint64 {
	return uint64(len(g.Offsets))*4 + uint64(len(g.Edges))*4
}

// MaxOutDegreeNode returns the node with the largest out-degree — the
// BFS source the paper uses ("the source node was the maximum
// out-degree node").
func (g *Graph) MaxOutDegreeNode() uint32 {
	best, bestDeg := uint32(0), -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(uint32(u)); d > bestDeg {
			best, bestDeg = uint32(u), d
		}
	}
	return best
}

// Validate checks CSR integrity.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph: empty offsets")
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d", g.Offsets[0])
	}
	n := uint32(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
	}
	if int(g.Offsets[n]) != len(g.Edges) {
		return fmt.Errorf("graph: final offset %d != edge count %d", g.Offsets[n], len(g.Edges))
	}
	for i, v := range g.Edges {
		if v >= n {
			return fmt.Errorf("graph: edge %d targets out-of-range node %d", i, v)
		}
	}
	return nil
}

// FromEdges builds a CSR graph from a directed edge list over n nodes.
func FromEdges(name string, n int, src, dst []uint32) (*Graph, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: %d sources vs %d destinations", len(src), len(dst))
	}
	offsets := make([]uint32, n+1)
	for _, u := range src {
		if int(u) >= n {
			return nil, fmt.Errorf("graph: source %d out of range", u)
		}
		offsets[u+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	edges := make([]uint32, len(src))
	cursor := make([]uint32, n)
	copy(cursor, offsets[:n])
	for i, u := range src {
		if int(dst[i]) >= n {
			return nil, fmt.Errorf("graph: destination %d out of range", dst[i])
		}
		edges[cursor[u]] = dst[i]
		cursor[u]++
	}
	// Sort each adjacency list for locality, matching the converters
	// real frameworks (Galois graph-converter) apply.
	for u := 0; u < n; u++ {
		adj := edges[offsets[u]:offsets[u+1]]
		sort.Slice(adj, func(a, b int) bool { return adj[a] < adj[b] })
	}
	g := &Graph{Name: name, Offsets: offsets, Edges: edges}
	return g, g.Validate()
}

// RMAT parameters of the Graph500 reference generator.
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
	// rmatD = 0.05 (implied)
)

// Kronecker generates a Graph500-style R-MAT graph with 2^scale nodes
// and edgeFactor*2^scale directed edges. kron30 in the paper is scale
// 30 with edge factor 16; scaled-down reproductions use smaller scales
// with the same skewed degree structure.
func Kronecker(scale, edgeFactor int, seed int64) (*Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: kronecker scale %d out of range", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graph: edge factor %d out of range", edgeFactor)
	}
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	src := make([]uint32, m)
	dst := make([]uint32, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < rmatA:
				// top-left: no bits set
			case r < rmatA+rmatB:
				v |= 1 << bit
			case r < rmatA+rmatB+rmatC:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		src[i] = uint32(u)
		dst[i] = uint32(v)
	}
	return FromEdges(fmt.Sprintf("kron%d", scale), n, src, dst)
}

// WebLike generates a crawl-shaped graph standing in for wdc12: a
// power-law out-degree distribution with locality-biased destinations
// (web links cluster within sites). 2^scale nodes, ~edgeFactor*2^scale
// edges.
func WebLike(scale, edgeFactor int, seed int64) (*Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: weblike scale %d out of range", scale)
	}
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	src := make([]uint32, 0, m)
	dst := make([]uint32, 0, m)
	// Zipf-ish out-degrees: most pages few links, some hubs many.
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(4*edgeFactor))
	for u := 0; u < n && len(src) < m; u++ {
		deg := int(zipf.Uint64()) + 1
		for e := 0; e < deg && len(src) < m; e++ {
			var v int
			if rng.Float64() < 0.7 {
				// Site-local link: near the source.
				v = u + rng.Intn(1024) - 512
				if v < 0 {
					v += n
				}
				v %= n
			} else {
				// Cross-site link, biased toward hubs.
				v = rng.Intn(n)
			}
			src = append(src, uint32(u))
			dst = append(dst, uint32(v))
		}
	}
	return FromEdges(fmt.Sprintf("web%d", scale), n, src, dst)
}

// Layout describes where a graph's CSR arrays live in the simulated
// address space.
type Layout struct {
	Offsets mem.Region
	Edges   mem.Region
}

// OffsetAddr returns the simulated address of Offsets[i].
func (l Layout) OffsetAddr(i uint32) uint64 { return l.Offsets.Base + uint64(i)*4 }

// EdgeAddr returns the simulated address of Edges[i].
func (l Layout) EdgeAddr(i uint32) uint64 { return l.Edges.Base + uint64(i)*4 }

// Place allocates the CSR arrays through alloc (which encodes the
// placement policy: flat 2LM, NUMA-preferred, or pinned NVRAM).
func (g *Graph) Place(alloc func(size uint64) (mem.Region, error)) (Layout, error) {
	off, err := alloc(uint64(len(g.Offsets)) * 4)
	if err != nil {
		return Layout{}, fmt.Errorf("graph: placing offsets: %w", err)
	}
	edges, err := alloc(uint64(len(g.Edges)) * 4)
	if err != nil {
		return Layout{}, fmt.Errorf("graph: placing edges: %w", err)
	}
	return Layout{Offsets: off, Edges: edges}, nil
}
