package graph

import "testing"

func TestTranspose(t *testing.T) {
	g, err := FromEdges("t", 4, []uint32{0, 0, 1, 3}, []uint32{1, 2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := g.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", gt.NumEdges(), g.NumEdges())
	}
	// Edge (0,1) becomes (1,0).
	found := false
	for _, v := range gt.Neighbors(1) {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Error("transposed edge (1,0) missing")
	}
	// Double transpose round-trips edge multiset sizes per node.
	gtt, err := gt.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 4; u++ {
		if gtt.OutDegree(u) != g.OutDegree(u) {
			t.Errorf("node %d degree changed after double transpose", u)
		}
	}
}

// TestTransposePreservesEdgeMultiset on a generated graph.
func TestTransposeKron(t *testing.T) {
	g, err := Kronecker(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := g.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumEdges() != g.NumEdges() {
		t.Fatal("transpose changed edge count")
	}
	// In-degree of v in g == out-degree of v in gt.
	indeg := make([]int, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			indeg[v]++
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if gt.OutDegree(uint32(v)) != indeg[v] {
			t.Fatalf("node %d: transpose out-degree %d != in-degree %d", v, gt.OutDegree(uint32(v)), indeg[v])
		}
	}
}

func TestUndirected(t *testing.T) {
	g, err := FromEdges("u", 4, []uint32{0, 0, 1, 2, 2}, []uint32{1, 1, 0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := g.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	// (0,1) duplicated and reciprocated collapses to one each way;
	// self-loop (2,2) drops; (2,3) gains (3,2).
	if sym.NumEdges() != 4 {
		t.Fatalf("symmetric edges = %d, want 4", sym.NumEdges())
	}
	for _, pair := range [][2]uint32{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		found := false
		for _, v := range sym.Neighbors(pair[0]) {
			if v == pair[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("edge (%d,%d) missing", pair[0], pair[1])
		}
	}
	// Symmetry property: u in N(v) iff v in N(u).
	for u := uint32(0); u < 4; u++ {
		for _, v := range sym.Neighbors(u) {
			back := false
			for _, w := range sym.Neighbors(v) {
				if w == u {
					back = true
				}
			}
			if !back {
				t.Errorf("asymmetric edge (%d,%d)", u, v)
			}
		}
	}
}

func TestStats(t *testing.T) {
	g, err := Kronecker(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Mean < 7.9 || st.Mean > 8.1 {
		t.Errorf("mean degree = %.2f, want ~8", st.Mean)
	}
	if st.Max < st.P99 || st.P99 < st.Median || st.Median < st.Min {
		t.Errorf("degree quantiles out of order: %+v", st)
	}
	// R-MAT graphs are skewed: the max far exceeds the median, and
	// isolated nodes exist.
	if st.Max < 4*st.Median+4 {
		t.Errorf("max %d not skewed vs median %d", st.Max, st.Median)
	}
	if st.Isolated == 0 {
		t.Error("R-MAT at this density should leave isolated nodes")
	}
}
