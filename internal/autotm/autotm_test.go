package autotm

import (
	"strings"
	"testing"

	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/dma"
	"twolm/internal/mem"
	"twolm/internal/nn"
	"twolm/internal/platform"
)

// buildPlan compiles a small training program whose footprint exceeds
// the test system's DRAM, forcing tensor movement.
func buildPlan(t *testing.T, batch int) *compiler.Plan {
	t.Helper()
	b := nn.NewBuilder("tiny", batch)
	x := b.Input(16, 16, 3)
	for i := 0; i < 6; i++ {
		x = b.Conv(x, 3, 1, 1, 16)
		x = b.BatchNorm(x)
		x = b.ReLU(x)
	}
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 10)
	prog, err := b.Train(logits)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// newSystem builds a 1LM system whose DRAM is a fraction of the plan
// footprint.
func newSystem(t *testing.T, mode core.Mode, dramPerChannel uint64) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  dramPerChannel,
			NVRAMPerChannel: 512 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     mode,
		LLCBytes: 16 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRequires1LM(t *testing.T) {
	plan := buildPlan(t, 4)
	sys := newSystem(t, core.Mode2LM, mem.MiB)
	if _, err := Execute(plan, sys, Config{}); err == nil {
		t.Error("2LM system accepted")
	}
}

// TestUnderPressureMovesTensors: with DRAM smaller than the footprint
// the planner must spill and refill.
func TestUnderPressureMovesTensors(t *testing.T) {
	plan := buildPlan(t, 64)
	// DRAM budget ~1/4 of footprint.
	sys := newSystem(t, core.Mode1LM, mem.AlignUp(plan.HeapSize/24, mem.Line))
	res, err := Execute(plan, sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MoveOutBytes == 0 || res.MoveInBytes == 0 {
		t.Errorf("no movement under pressure: in=%d out=%d", res.MoveInBytes, res.MoveOutBytes)
	}
	if res.Counters.NVRAMWrite == 0 || res.Counters.NVRAMRead == 0 {
		t.Error("no NVRAM traffic under pressure")
	}
}

// TestFitsInDRAMNoMovement: when everything fits, AutoTM never touches
// NVRAM after setup.
func TestFitsInDRAMNoMovement(t *testing.T) {
	plan := buildPlan(t, 4)
	sys := newSystem(t, core.Mode1LM, 4*plan.HeapSize)
	res, err := Execute(plan, sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MoveOutBytes != 0 {
		t.Errorf("moved %d bytes out despite fitting", res.MoveOutBytes)
	}
	if res.Counters.NVRAMWrite != 0 || res.Counters.NVRAMRead != 0 {
		t.Errorf("NVRAM traffic despite fitting: %v", res.Counters)
	}
}

// TestDeadDataElision is the headline property: NVRAM write traffic
// must be bounded by the bytes of *live* tensors stashed for the
// backward pass — dead data is never written back.
func TestDeadDataElision(t *testing.T) {
	plan := buildPlan(t, 64)
	sys := newSystem(t, core.Mode1LM, mem.AlignUp(plan.HeapSize/24, mem.Line))
	res, err := Execute(plan, sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Every NVRAM write byte must be matched by a later (or equal)
	// read byte: stashed data is read back on the backward pass, and
	// nothing else is ever written. Slack of one tensor covers data
	// stashed but re-fetched in the same phase.
	w := res.Counters.NVRAMWrite * mem.Line
	r := res.Counters.NVRAMRead * mem.Line
	if w > r+w/10 {
		t.Errorf("NVRAM writes (%d) exceed reads (%d): dead data written back", w, r)
	}
	if res.MoveOutBytes != w {
		t.Errorf("move-out accounting mismatch: %d vs %d", res.MoveOutBytes, w)
	}
}

// TestPhaseSeparation: NVRAM writes happen in the forward pass and
// reads in the backward pass (the paper's Figure 10).
func TestPhaseSeparation(t *testing.T) {
	plan := buildPlan(t, 64)
	sys := newSystem(t, core.Mode1LM, mem.AlignUp(plan.HeapSize/24, mem.Line))
	res, err := Execute(plan, sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var fwdW, bwdW, fwdR, bwdR uint64
	phase := "fwd"
	for _, s := range res.Series.Samples() {
		if strings.HasPrefix(s.Label, "bwd:") {
			phase = "bwd"
		}
		if phase == "fwd" {
			fwdW += s.Delta.NVRAMWrite
			fwdR += s.Delta.NVRAMRead
		} else {
			bwdW += s.Delta.NVRAMWrite
			bwdR += s.Delta.NVRAMRead
		}
	}
	if fwdW == 0 {
		t.Error("no forward-pass NVRAM writes (no stashing?)")
	}
	if bwdR == 0 {
		t.Error("no backward-pass NVRAM reads (no restore?)")
	}
	// The shape: writes concentrate forward, reads backward.
	if bwdW > fwdW/4 {
		t.Errorf("backward NVRAM writes %d too large vs forward %d", bwdW, fwdW)
	}
	if fwdR > bwdR/2 {
		t.Errorf("forward NVRAM reads %d too large vs backward %d", fwdR, bwdR)
	}
}

// TestBudgetRespected: the planner errors when one kernel's operand
// set cannot fit.
func TestBudgetRespected(t *testing.T) {
	plan := buildPlan(t, 64)
	// Budget far below the largest kernel footprint.
	sys := newSystem(t, core.Mode1LM, mem.MiB)
	_, err := Execute(plan, sys, Config{DRAMBudget: 4 * mem.KiB})
	if err == nil {
		t.Error("impossible budget accepted")
	}
}

// TestDMAMoverOverlapsMoves: with a fast asynchronous engine, moves
// hide under compute and the run gets faster than synchronous CPU
// copies, with identical traffic volumes.
func TestDMAMoverOverlapsMoves(t *testing.T) {
	plan := buildPlan(t, 64)
	budget := mem.AlignUp(plan.HeapSize/24, mem.Line)

	cpuSys := newSystem(t, core.Mode1LM, budget)
	cpuRes, err := Execute(plan, cpuSys, Config{})
	if err != nil {
		t.Fatal(err)
	}

	engine := dma.FutureGen()
	dmaSys := newSystem(t, core.Mode1LM, budget)
	dmaRes, err := Execute(plan, dmaSys, Config{Mover: &engine})
	if err != nil {
		t.Fatal(err)
	}

	if dmaRes.Elapsed >= cpuRes.Elapsed {
		t.Errorf("async engine (%.5fs) not faster than CPU copies (%.5fs)", dmaRes.Elapsed, cpuRes.Elapsed)
	}
	if dmaRes.MoveInBytes != cpuRes.MoveInBytes || dmaRes.MoveOutBytes != cpuRes.MoveOutBytes {
		t.Errorf("mover changed the movement plan: in %d/%d out %d/%d",
			dmaRes.MoveInBytes, cpuRes.MoveInBytes, dmaRes.MoveOutBytes, cpuRes.MoveOutBytes)
	}
	// Engine moves bypass the CPU path: no RFOs for move traffic means
	// fewer LLC reads overall.
	if dmaRes.Counters.LLCRead >= cpuRes.Counters.LLCRead {
		t.Errorf("engine moves still went through the CPU: llcR %d vs %d",
			dmaRes.Counters.LLCRead, cpuRes.Counters.LLCRead)
	}
}

// TestSlowDMAMoverHurts: an engine slower than the devices becomes the
// bottleneck — the paper's point about current I/O-oriented DMA.
func TestSlowDMAMoverHurts(t *testing.T) {
	plan := buildPlan(t, 64)
	budget := mem.AlignUp(plan.HeapSize/24, mem.Line)

	cpuSys := newSystem(t, core.Mode1LM, budget)
	cpuRes, err := Execute(plan, cpuSys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow := dma.Engine{Name: "crawler", Bandwidth: 5e8} // 0.5 GB/s
	slowSys := newSystem(t, core.Mode1LM, budget)
	slowRes, err := Execute(plan, slowSys, Config{Mover: &slow})
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Elapsed <= cpuRes.Elapsed {
		t.Errorf("0.5 GB/s engine (%.5fs) should be slower than CPU copies (%.5fs)",
			slowRes.Elapsed, cpuRes.Elapsed)
	}
}

// TestFasterThan2LMUnderPressure: the paper's bottom line for CNNs.
func TestFasterThan2LMUnderPressure(t *testing.T) {
	plan := buildPlan(t, 128)
	dramPerChannel := mem.AlignUp(plan.HeapSize/24, mem.Line) // DRAM ~ 1/4 of footprint
	sys1 := newSystem(t, core.Mode1LM, dramPerChannel)
	r1, err := Execute(plan, sys1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys2 := newSystem(t, core.Mode2LM, dramPerChannel)
	r2, err := compiler.Execute(plan, sys2, compiler.ExecConfig{WarmupIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed >= r2.Elapsed {
		t.Errorf("AutoTM (%.4fs) not faster than 2LM (%.4fs)", r1.Elapsed, r2.Elapsed)
	}
	// And with less NVRAM traffic.
	nv1 := r1.Counters.NVRAMRead + r1.Counters.NVRAMWrite
	nv2 := r2.Counters.NVRAMRead + r2.Counters.NVRAMWrite
	if nv1 >= nv2 {
		t.Errorf("AutoTM NVRAM traffic (%d) not below 2LM (%d)", nv1, nv2)
	}
}
