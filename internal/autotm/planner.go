// Offline placement planning. AutoTM proper (Hildebrand et al.,
// ASPLOS'20) formulates tensor placement as an integer linear program
// over profiled kernel times; Execute's online Belady policy is the
// fast approximation. This file adds the offline counterpart: a static
// stash/keep decision per tensor, solved either greedily or exactly by
// branch and bound, so the repository can quantify how much plan
// quality the online heuristic leaves behind.
//
// The optimization problem ("stash selection"):
//
//	For each non-weight tensor t with live range [def_t, last_t],
//	choose x_t ∈ {KEEP, STASH}.
//	  KEEP:  t occupies DRAM for its whole live range; no move cost.
//	  STASH: t occupies DRAM only at the kernels that access it; in
//	         between it lives in NVRAM, costing one write after its
//	         definition and one read before each later use.
//	Subject to: at every kernel k, the resident bytes (weights +
//	KEEP-tensors live at k + STASH-tensors accessed at k) fit the
//	DRAM budget.
//	Minimize: total modeled move time of the stashed tensors.
//
// This is a covering/knapsack hybrid (NP-hard in general); programs
// small enough get the exact answer, larger ones the greedy bound.
package autotm

import (
	"fmt"
	"sort"

	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/nn"
)

// Decision is a per-tensor placement choice.
type Decision uint8

const (
	// Keep holds the tensor in DRAM for its whole live range.
	Keep Decision = iota
	// Stash spills the tensor to NVRAM between uses.
	Stash
)

// StaticPlan is an offline placement for a compiled program.
type StaticPlan struct {
	Plan *compiler.Plan
	// Decisions has one entry per tensor (weights are always Keep).
	Decisions []Decision
	// MoveCost is the modeled total stash traffic time in seconds.
	MoveCost float64
	// Optimal records whether the solver proved optimality.
	Optimal bool
}

// stashProblem is the prepared optimization instance.
type stashProblem struct {
	plan   *compiler.Plan
	budget uint64
	// candidates are the stashable tensor IDs (non-weight, live over
	// more than one kernel).
	candidates []int
	// cost[i] is the move time of stashing candidates[i].
	cost []float64
	// accessedAt[t] marks kernels that read or write t.
	accessedAt map[int]map[int]bool
	// baseline[k] is resident bytes at k with everything kept.
	baseline []uint64
}

// moveCostSeconds models the stash traffic of one tensor: one NVRAM
// write after its definition plus one NVRAM read before each later
// use, at the sequential move bandwidths of Section III.
func moveCostSeconds(bytes uint64, uses int) float64 {
	const (
		nvramWriteBW = 10.6e9
		nvramReadBW  = 30.6e9
	)
	reads := uses - 1
	if reads < 0 {
		reads = 0
	}
	return float64(bytes)/nvramWriteBW + float64(reads)*float64(bytes)/nvramReadBW
}

// newStashProblem prepares the instance.
func newStashProblem(plan *compiler.Plan, budget uint64) *stashProblem {
	nK := len(plan.Prog.Kernels)
	p := &stashProblem{
		plan:       plan,
		budget:     budget,
		accessedAt: make(map[int]map[int]bool),
		baseline:   make([]uint64, nK),
	}
	uses := make(map[int]int)
	for ki, k := range plan.Prog.Kernels {
		for _, t := range k.Reads {
			markAccess(p.accessedAt, t, ki)
			uses[t]++
		}
		for _, t := range k.Writes {
			markAccess(p.accessedAt, t, ki)
			uses[t]++
		}
	}
	for t := range plan.Bytes {
		if plan.Prog.Tensors[t].Kind == nn.Weight {
			// Weights are pinned; count them into every kernel.
			for k := range p.baseline {
				p.baseline[k] += plan.Bytes[t]
			}
			continue
		}
		if plan.FirstDef[t] < 0 {
			continue
		}
		for k := plan.FirstDef[t]; k <= plan.LastUse[t] && k < nK; k++ {
			p.baseline[k] += plan.Bytes[t]
		}
		// Stashing only helps if the live range spans kernels beyond
		// the accesses themselves.
		if plan.LastUse[t] > plan.FirstDef[t]+1 {
			p.candidates = append(p.candidates, t)
			p.cost = append(p.cost, moveCostSeconds(plan.Bytes[t], uses[t]))
		}
	}
	return p
}

func markAccess(m map[int]map[int]bool, t, k int) {
	if m[t] == nil {
		m[t] = make(map[int]bool)
	}
	m[t][k] = true
}

// relief returns how many bytes stashing tensor t removes from kernel
// k's residency (its size if live-but-not-accessed there, else 0).
func (p *stashProblem) relief(t, k int) uint64 {
	if k < p.plan.FirstDef[t] || k > p.plan.LastUse[t] {
		return 0
	}
	if p.accessedAt[t][k] {
		return 0
	}
	return p.plan.Bytes[t]
}

// feasible reports whether the stash set satisfies every kernel's
// budget, returning the first violated kernel otherwise.
func (p *stashProblem) feasible(stash map[int]bool) (int, bool) {
	for k := range p.baseline {
		load := p.baseline[k]
		for t := range stash {
			load -= p.relief(t, k)
		}
		if load > p.budget {
			return k, false
		}
	}
	return -1, true
}

// totalCost sums the stash set's move time.
func (p *stashProblem) totalCost(stash map[int]bool) float64 {
	var c float64
	for i, t := range p.candidates {
		if stash[t] {
			c += p.cost[i]
		}
	}
	return c
}

// SolveGreedy picks, at each step, the candidate with the best
// relieved-bytes-per-second-of-move-cost ratio at the currently most
// overloaded kernel, until every kernel fits (or fails if none can).
func SolveGreedy(plan *compiler.Plan, budget uint64) (*StaticPlan, error) {
	p := newStashProblem(plan, budget)
	stash := make(map[int]bool)
	for {
		k, ok := p.feasible(stash)
		if ok {
			break
		}
		best, bestRatio := -1, 0.0
		for i, t := range p.candidates {
			if stash[t] {
				continue
			}
			r := p.relief(t, k)
			if r == 0 {
				continue
			}
			cost := p.cost[i]
			if cost <= 0 {
				cost = 1e-12
			}
			if ratio := float64(r) / cost; ratio > bestRatio {
				best, bestRatio = t, ratio
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("autotm: kernel %d cannot fit budget %s even with every tensor stashed",
				k, mem.FormatBytes(budget))
		}
		stash[best] = true
	}
	return p.finish(stash, false), nil
}

// SolveExact finds the minimum-cost stash set by branch and bound,
// exploring candidates in decreasing relief order with a greedy upper
// bound and an admissible lower bound. maxNodes caps the search; when
// exceeded the best-known (still feasible) solution is returned with
// Optimal=false.
func SolveExact(plan *compiler.Plan, budget uint64, maxNodes int) (*StaticPlan, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 16
	}
	p := newStashProblem(plan, budget)

	// Start from the greedy solution as the incumbent.
	greedy, err := SolveGreedy(plan, budget)
	if err != nil {
		return nil, err
	}
	bestCost := greedy.MoveCost
	bestSet := make(map[int]bool)
	for t, d := range greedy.decisionSet() {
		if d {
			bestSet[t] = true
		}
	}

	// Order candidates by cost ascending so cheap relief is tried
	// first.
	order := make([]int, len(p.candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.cost[order[a]] < p.cost[order[b]] })

	nodes := 0
	optimal := true
	current := make(map[int]bool)

	var dfs func(idx int, cost float64)
	dfs = func(idx int, cost float64) {
		nodes++
		if nodes > maxNodes {
			optimal = false
			return
		}
		if cost >= bestCost {
			return // bound
		}
		if _, ok := p.feasible(current); ok {
			// Feasible with the current set: cost is final (adding
			// more only raises it).
			bestCost = cost
			bestSet = make(map[int]bool, len(current))
			for t := range current {
				bestSet[t] = true
			}
			return
		}
		if idx >= len(order) {
			return // infeasible leaf
		}
		ci := order[idx]
		t := p.candidates[ci]
		// Branch 1: stash t.
		current[t] = true
		dfs(idx+1, cost+p.cost[ci])
		delete(current, t)
		// Branch 2: keep t.
		dfs(idx+1, cost)
	}
	dfs(0, 0)

	sp := p.finish(bestSet, optimal)
	return sp, nil
}

// decisionSet converts back to a map for the solver's incumbent.
func (s *StaticPlan) decisionSet() map[int]bool {
	out := make(map[int]bool)
	for t, d := range s.Decisions {
		if d == Stash {
			out[t] = true
		}
	}
	return out
}

// finish materializes a StaticPlan from a stash set.
func (p *stashProblem) finish(stash map[int]bool, optimal bool) *StaticPlan {
	sp := &StaticPlan{
		Plan:      p.plan,
		Decisions: make([]Decision, len(p.plan.Bytes)),
		MoveCost:  p.totalCost(stash),
		Optimal:   optimal,
	}
	for t := range stash {
		sp.Decisions[t] = Stash
	}
	return sp
}

// PeakResident returns the maximum per-kernel DRAM residency the
// static plan implies.
func (s *StaticPlan) PeakResident() uint64 {
	p := newStashProblem(s.Plan, ^uint64(0))
	var peak uint64
	for k := range p.baseline {
		load := p.baseline[k]
		for t, d := range s.Decisions {
			if d == Stash {
				load -= p.relief(t, k)
			}
		}
		if load > peak {
			peak = load
		}
	}
	return peak
}

// StashedBytes sums the sizes of stashed tensors.
func (s *StaticPlan) StashedBytes() uint64 {
	var n uint64
	for t, d := range s.Decisions {
		if d == Stash {
			n += s.Plan.Bytes[t]
		}
	}
	return n
}

// ExecuteStatic runs a compiled program on a 1LM system following the
// static plan: Keep tensors live in DRAM for their whole range, Stash
// tensors move out after their definition and back in before each
// later use. It is the offline counterpart of Execute's online policy
// and returns the same Result shape.
func ExecuteStatic(plan *compiler.Plan, sys *core.System, static *StaticPlan, cfg Config) (*Result, error) {
	if sys.Mode() != core.Mode1LM {
		return nil, fmt.Errorf("autotm: requires a 1LM (app-direct) system, got %v", sys.Mode())
	}
	if static.Plan != plan {
		return nil, fmt.Errorf("autotm: static plan was built for a different compilation")
	}
	if cfg.DRAMBudget == 0 {
		cfg.DRAMBudget = sys.Platform().DRAMSize() * 9 / 10
	}
	cfg.Exec = execDefaults(cfg.Exec)
	if peak := static.PeakResident(); peak > cfg.DRAMBudget {
		return nil, fmt.Errorf("autotm: static plan peaks at %s, above the %s budget",
			mem.FormatBytes(peak), mem.FormatBytes(cfg.DRAMBudget))
	}

	nvramHome, err := sys.AddressSpace().AllocNVRAM(plan.HeapSize)
	if err != nil {
		return nil, fmt.Errorf("autotm: NVRAM home: %w", err)
	}
	dramPool, err := sys.AddressSpace().AllocDRAM(cfg.DRAMBudget)
	if err != nil {
		return nil, fmt.Errorf("autotm: DRAM pool: %w", err)
	}

	p := &planner{
		plan:      plan,
		sys:       sys,
		cfg:       cfg,
		nvramHome: nvramHome,
		dramBase:  dramPool.Base,
		budget:    cfg.DRAMBudget,
		state:     make([]residency, len(plan.Bytes)),
	}
	sys.SetThreads(cfg.Exec.Threads)
	sys.SetTraffic(mem.Sequential, mem.Line)
	if cfg.Mover != nil {
		sys.SetDMABandwidth(cfg.Mover.Bandwidth)
	}
	sys.Sync("setup", 0)
	sys.ResetStats()
	start := sys.Clock()

	for ki := range plan.Prog.Kernels {
		k := &plan.Prog.Kernels[ki]
		moved := false
		// Restore stashed operands.
		for _, t := range k.Reads {
			if static.Decisions[t] == Stash && !p.state[t].resident {
				p.copy(p.nvramRegion(t), p.dramRegion(t))
				p.moveIn += plan.Bytes[t]
				p.state[t].resident = true
				moved = true
			}
		}
		if moved && cfg.Mover == nil {
			sys.Sync("move:"+k.Name, 0)
		}
		// Execute against DRAM.
		for _, t := range k.Reads {
			sys.LoadRange(p.dramRegion(t))
		}
		for _, t := range k.Writes {
			sys.StoreRange(p.dramRegion(t))
			p.state[t].resident = true
		}
		sys.AddInstructions(plan.KernelInstructions(ki))
		phase := "fwd"
		if ki >= plan.Prog.ForwardKernels {
			phase = "bwd"
		}
		sys.Sync(phase+":"+k.Name, plan.KernelSeconds(ki, cfg.Exec))

		// Stash producers whose value survives but whose next use is
		// later; drop everything dead.
		stashed := false
		for _, t := range k.Writes {
			if plan.LastUse[t] == ki {
				p.state[t].resident = false
				continue
			}
			if static.Decisions[t] == Stash {
				p.copy(p.dramRegion(t), p.nvramRegion(t))
				p.moveOut += plan.Bytes[t]
				p.state[t].resident = false
				stashed = true
			}
		}
		for _, t := range k.Reads {
			if plan.LastUse[t] == ki {
				p.state[t].resident = false
			} else if static.Decisions[t] == Stash && p.state[t].resident {
				// Re-stash only if the value was modified; reads leave
				// the NVRAM copy valid, so just drop the DRAM copy.
				p.state[t].resident = false
			}
		}
		if stashed && cfg.Mover == nil {
			sys.Sync("stash:"+k.Name, 0)
		}
	}
	sys.DrainLLC()
	sys.Sync("drain", 0)

	return &Result{
		Elapsed:      sys.Clock() - start,
		Counters:     sys.Counters(),
		Series:       sys.Series(),
		MoveInBytes:  p.moveIn,
		MoveOutBytes: p.moveOut,
	}, nil
}
