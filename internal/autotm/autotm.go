// Package autotm implements software-managed tensor movement for
// compiled CNN training programs over a 1LM (app-direct) system — the
// reproduction of AutoTM (Hildebrand et al., ASPLOS'20), the software
// baseline of the paper's Section VII-A-1.
//
// AutoTM proper formulates tensor placement as an integer linear
// program over a profile of kernel run times. This package substitutes
// a profile-guided planner with the same observable behaviors the
// paper relies on (see DESIGN.md):
//
//   - kernels compute on DRAM-resident operands; tensors move between
//     NVRAM and DRAM synchronously between kernels, using sequential
//     loads and nontemporal stores (the access patterns Section III
//     shows reach full device bandwidth);
//   - eviction is profile-guided Belady: the resident tensor with the
//     farthest next use leaves first;
//   - *semantically dead data is never written back*: a tensor past
//     its last use is dropped, and a clean tensor is re-fetched rather
//     than re-written — eliding exactly the write-backs the 2LM cache
//     cannot avoid;
//   - consequently NVRAM writes happen (almost) only while stashing
//     live activations during the forward pass, and NVRAM reads while
//     restoring them during the backward pass (the paper's Figure 10).
package autotm

import (
	"fmt"
	"sort"

	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/dma"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nn"
	"twolm/internal/perfcounter"
)

// Config parameterizes the planner.
type Config struct {
	// DRAMBudget is the scaled DRAM pool available for tensors; 0
	// selects 90% of the system's DRAM (leaving OS headroom).
	DRAMBudget uint64
	// Exec carries the compute-time model shared with 2LM execution.
	Exec compiler.ExecConfig
	// Mover selects an asynchronous copy engine for tensor movement —
	// the paper's hardware/software co-design direction. Nil keeps the
	// baseline AutoTM behavior: CPU cores moving data with loads and
	// nontemporal stores, synchronously between kernels.
	Mover *dma.Engine
}

// Result reports one AutoTM-managed training iteration.
type Result struct {
	// Elapsed is the simulated iteration time in seconds.
	Elapsed float64
	// Counters holds the iteration's memory traffic.
	Counters imc.Counters
	// Series is the per-kernel trace (the paper's Figure 10).
	Series *perfcounter.Series
	// MoveInBytes and MoveOutBytes are the planner's explicit transfer
	// volumes (scaled).
	MoveInBytes  uint64
	MoveOutBytes uint64
	// Spilled reports how many tensor move-ins were needed (plan
	// quality diagnostic).
	Spilled int
}

// DRAMReadBytes et al. report traffic in bytes at simulation scale.
func (r *Result) DRAMReadBytes() uint64   { return r.Counters.DRAMRead * mem.Line }
func (r *Result) DRAMWriteBytes() uint64  { return r.Counters.DRAMWrite * mem.Line }
func (r *Result) NVRAMReadBytes() uint64  { return r.Counters.NVRAMRead * mem.Line }
func (r *Result) NVRAMWriteBytes() uint64 { return r.Counters.NVRAMWrite * mem.Line }

// residency tracks one tensor's placement state.
type residency struct {
	resident bool
	dirty    bool // modified since last NVRAM copy (or never copied)
	dramAddr uint64
}

// planner executes a plan with software-managed movement.
type planner struct {
	plan *compiler.Plan
	sys  *core.System
	cfg  Config

	nvramHome mem.Region // NVRAM backing store, plan-offset addressed
	dramBase  uint64     // base of the DRAM tensor pool
	budget    uint64
	inUse     uint64

	state []residency
	// uses[t] lists kernel indices that touch t, ascending; cursor[t]
	// indexes the next use.
	uses   [][]int
	cursor []int

	moveIn, moveOut uint64
	spills          int
	// dramFree is a trivial offset allocator over the DRAM pool; the
	// 1LM simulator only distinguishes pools, so fragmentation is
	// modeled by byte accounting rather than address packing.
	dramNext uint64
}

// Execute runs plan on a 1LM system under software management and
// measures one iteration (after an unmeasured stabilization pass is
// unnecessary — placement is deterministic, so the first iteration is
// already steady apart from the initial weight load, which is charged
// to setup and excluded like the paper's warmup iterations).
func Execute(plan *compiler.Plan, sys *core.System, cfg Config) (*Result, error) {
	if sys.Mode() != core.Mode1LM {
		return nil, fmt.Errorf("autotm: requires a 1LM (app-direct) system, got %v", sys.Mode())
	}
	if cfg.DRAMBudget == 0 {
		cfg.DRAMBudget = sys.Platform().DRAMSize() * 9 / 10
	}
	cfg.Exec = execDefaults(cfg.Exec)

	nvramHome, err := sys.AddressSpace().AllocNVRAM(plan.HeapSize)
	if err != nil {
		return nil, fmt.Errorf("autotm: NVRAM home: %w", err)
	}
	dramPool, err := sys.AddressSpace().AllocDRAM(cfg.DRAMBudget)
	if err != nil {
		return nil, fmt.Errorf("autotm: DRAM pool: %w", err)
	}

	p := &planner{
		plan:      plan,
		sys:       sys,
		cfg:       cfg,
		nvramHome: nvramHome,
		dramBase:  dramPool.Base,
		budget:    cfg.DRAMBudget,
		state:     make([]residency, len(plan.Bytes)),
		uses:      make([][]int, len(plan.Bytes)),
		cursor:    make([]int, len(plan.Bytes)),
	}
	for ki, k := range plan.Prog.Kernels {
		for _, t := range k.Reads {
			p.uses[t] = append(p.uses[t], ki)
		}
		for _, t := range k.Writes {
			p.uses[t] = append(p.uses[t], ki)
		}
	}

	sys.SetThreads(cfg.Exec.Threads)
	sys.SetTraffic(mem.Sequential, mem.Line)
	if cfg.Mover != nil {
		sys.SetDMABandwidth(cfg.Mover.Bandwidth)
	}

	// Setup: pin the (small) weights in DRAM, excluded from the
	// measured iteration like the paper's warmup.
	for i := range plan.Bytes {
		if plan.Prog.Tensors[i].Kind == nn.Weight {
			if err := p.moveInTensor(i, 0, false, map[int]bool{i: true}); err != nil {
				return nil, err
			}
		}
	}
	sys.Sync("setup", 0)
	sys.ResetStats()

	start := sys.Clock()
	if err := p.run(); err != nil {
		return nil, err
	}

	return &Result{
		Elapsed:      sys.Clock() - start,
		Counters:     sys.Counters(),
		Series:       sys.Series(),
		MoveInBytes:  p.moveIn,
		MoveOutBytes: p.moveOut,
		Spilled:      p.spills,
	}, nil
}

func execDefaults(c compiler.ExecConfig) compiler.ExecConfig {
	if c.Threads <= 0 {
		c.Threads = 24
	}
	return c
}

// dramRegion returns the pool region assigned to tensor t. Addresses
// wrap within the pool: the 1LM model needs pool membership and
// channel spread only, while capacity is enforced by byte accounting.
func (p *planner) dramRegion(t int) mem.Region {
	size := p.plan.Bytes[t]
	off := p.plan.Offsets[t] % p.budget
	if off+size > p.budget {
		// Keep the region inside the pool; exact placement is
		// irrelevant to the 1LM model.
		off = p.budget - size
	}
	return mem.Region{Base: p.dramBase + off, Size: size}
}

// nvramRegion returns tensor t's NVRAM home.
func (p *planner) nvramRegion(t int) mem.Region {
	return p.plan.Region(p.nvramHome.Base, t)
}

// nextUse returns the next kernel index at or after k that uses t, or
// a sentinel past the program end.
func (p *planner) nextUse(t, k int) int {
	u := p.uses[t]
	for p.cursor[t] < len(u) && u[p.cursor[t]] < k {
		p.cursor[t]++
	}
	if p.cursor[t] < len(u) {
		return u[p.cursor[t]]
	}
	return len(p.plan.Prog.Kernels) + 1
}

// ensureBudget evicts resident tensors (farthest next use first) until
// need bytes fit. Tensors in keep are not evicted.
func (p *planner) ensureBudget(need uint64, k int, keep map[int]bool) error {
	if need > p.budget {
		return fmt.Errorf("autotm: tensor set of %s exceeds DRAM budget %s",
			mem.FormatBytes(need), mem.FormatBytes(p.budget))
	}
	if p.inUse+need <= p.budget {
		return nil
	}
	// Collect eviction candidates.
	type cand struct {
		t    int
		next int
	}
	var cands []cand
	for t := range p.state {
		if p.state[t].resident && !keep[t] {
			cands = append(cands, cand{t, p.nextUse(t, k)})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].next > cands[b].next })
	for _, c := range cands {
		if p.inUse+need <= p.budget {
			return nil
		}
		p.evict(c.t, k)
	}
	if p.inUse+need > p.budget {
		return fmt.Errorf("autotm: cannot free %s for kernel %d", mem.FormatBytes(need), k)
	}
	return nil
}

// evict removes tensor t from DRAM. Live, modified tensors are written
// back to their NVRAM home (sequential reads + nontemporal stores —
// the bandwidth-optimal pattern of Section III). Dead or clean tensors
// are dropped with no traffic: the dead-data elision 2LM cannot do.
func (p *planner) evict(t, k int) {
	st := &p.state[t]
	if !st.resident {
		return
	}
	live := p.plan.LastUse[t] >= k
	if live && st.dirty {
		p.copy(p.dramRegion(t), p.nvramRegion(t))
		p.moveOut += p.plan.Bytes[t]
		st.dirty = false
	}
	st.resident = false
	p.inUse -= p.plan.Bytes[t]
}

// copy transfers src to dst through the configured mover: CPU loads
// plus nontemporal stores by default, or the asynchronous copy engine.
func (p *planner) copy(src, dst mem.Region) {
	if p.cfg.Mover != nil {
		p.sys.DMACopy(src, dst)
		return
	}
	p.sys.LoadRange(src)
	p.sys.StoreNTRange(dst)
}

// moveInTensor makes tensor t resident. When fetch is true the tensor's
// contents are copied from its NVRAM home (needed for reads; a tensor
// about to be fully overwritten needs only an allocation). Tensors in
// keep — the current kernel's full operand set — are exempt from
// eviction so staging one operand cannot displace another.
func (p *planner) moveInTensor(t, k int, fetch bool, keep map[int]bool) error {
	st := &p.state[t]
	if st.resident {
		return nil
	}
	if err := p.ensureBudget(p.plan.Bytes[t], k, keep); err != nil {
		return err
	}
	if fetch {
		p.copy(p.nvramRegion(t), p.dramRegion(t))
		p.moveIn += p.plan.Bytes[t]
		p.spills++
	}
	st.resident = true
	st.dirty = !fetch // fresh allocations have no NVRAM copy yet
	p.inUse += p.plan.Bytes[t]
	return nil
}

// run executes every kernel with operands staged in DRAM.
func (p *planner) run() error {
	for ki := range p.plan.Prog.Kernels {
		k := &p.plan.Prog.Kernels[ki]

		// Stage operands. Everything the kernel touches must stay
		// resident together.
		keep := make(map[int]bool, len(k.Reads)+len(k.Writes))
		for _, t := range k.Reads {
			keep[t] = true
		}
		for _, t := range k.Writes {
			keep[t] = true
		}
		movedBefore := p.moveIn + p.moveOut
		for _, t := range k.Reads {
			if err := p.moveInTensor(t, ki, true, keep); err != nil {
				return err
			}
		}
		for _, t := range k.Writes {
			// First definition needs no fetch; rewrites of existing
			// tensors (gradient accumulation) do, unless resident.
			fetch := p.plan.FirstDef[t] != ki
			if err := p.moveInTensor(t, ki, fetch, keep); err != nil {
				return err
			}
		}
		// CPU moves are synchronous: "tensors are usually moved between
		// DRAM and NVRAM synchronously between compute kernel
		// execution" (Section VII-A-1), so their time does not overlap
		// the kernel's compute. Engine moves stay in the kernel's
		// interval, where Sync overlaps them with compute — the
		// co-design payoff.
		if p.cfg.Mover == nil && p.moveIn+p.moveOut > movedBefore {
			p.sys.Sync("move:"+k.Name, 0)
		}

		// Execute the kernel against DRAM.
		for _, t := range k.Reads {
			p.sys.LoadRange(p.dramRegion(t))
		}
		for _, t := range k.Writes {
			p.sys.StoreRange(p.dramRegion(t))
			p.state[t].dirty = true
		}
		p.sys.AddInstructions(p.plan.KernelInstructions(ki))

		phase := "fwd"
		if ki >= p.plan.Prog.ForwardKernels {
			phase = "bwd"
		}
		p.sys.Sync(phase+":"+k.Name, p.plan.KernelSeconds(ki, p.cfg.Exec))

		// Retire dead tensors immediately: their space frees with no
		// write-back.
		for _, t := range k.Reads {
			p.retireIfDead(t, ki)
		}
		for _, t := range k.Writes {
			p.retireIfDead(t, ki)
		}
	}
	p.sys.DrainLLC()
	p.sys.Sync("drain", 0)
	return nil
}

// retireIfDead drops tensor t if kernel k was its last use.
func (p *planner) retireIfDead(t, k int) {
	if p.plan.Prog.Tensors[t].Kind == nn.Weight {
		return
	}
	if p.plan.LastUse[t] == k && p.state[t].resident {
		p.state[t].resident = false
		p.state[t].dirty = false
		p.inUse -= p.plan.Bytes[t]
	}
}

// Sample re-exports the perfcounter sample type for consumers.
type Sample = perfcounter.Sample
