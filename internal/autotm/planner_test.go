package autotm

import (
	"testing"

	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/nn"
)

// TestGreedyFeasible: the greedy plan satisfies every kernel budget.
func TestGreedyFeasible(t *testing.T) {
	plan := buildPlan(t, 64)
	budget := plan.HeapSize / 3
	sp, err := SolveGreedy(plan, budget)
	if err != nil {
		t.Fatal(err)
	}
	if peak := sp.PeakResident(); peak > budget {
		t.Errorf("greedy plan peaks at %d bytes, budget %d", peak, budget)
	}
	if sp.StashedBytes() == 0 {
		t.Error("a third of the footprint should force stashing")
	}
	if sp.MoveCost <= 0 {
		t.Error("stashing without cost")
	}
}

// TestGreedyNoPressureNoStash: with a generous budget nothing moves.
func TestGreedyNoPressureNoStash(t *testing.T) {
	plan := buildPlan(t, 8)
	sp, err := SolveGreedy(plan, 4*plan.HeapSize)
	if err != nil {
		t.Fatal(err)
	}
	if sp.StashedBytes() != 0 || sp.MoveCost != 0 {
		t.Errorf("unnecessary stashing: %d bytes, cost %f", sp.StashedBytes(), sp.MoveCost)
	}
}

// TestGreedyImpossibleBudget: budgets below the per-kernel working set
// are rejected.
func TestGreedyImpossibleBudget(t *testing.T) {
	plan := buildPlan(t, 64)
	if _, err := SolveGreedy(plan, mem.Line); err == nil {
		t.Error("impossible budget accepted")
	}
}

// TestExactNoWorseThanGreedy: the branch-and-bound cost never exceeds
// its greedy incumbent, and both are feasible.
func TestExactNoWorseThanGreedy(t *testing.T) {
	plan := buildPlan(t, 48)
	budget := plan.HeapSize / 3
	greedy, err := SolveGreedy(plan, budget)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveExact(plan, budget, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if exact.MoveCost > greedy.MoveCost+1e-12 {
		t.Errorf("exact cost %.6g above greedy %.6g", exact.MoveCost, greedy.MoveCost)
	}
	if peak := exact.PeakResident(); peak > budget {
		t.Errorf("exact plan infeasible: peak %d > budget %d", peak, budget)
	}
}

// TestExactOptimalOnTinyInstance: brute-force verification on a
// hand-built program small enough to enumerate.
func TestExactOptimalOnTinyInstance(t *testing.T) {
	// Three chained layers: activations a, b, c; a is also re-read at
	// the end (long live range), so stashing a is the cheap relief.
	b := nn.NewBuilder("tiny", 16)
	x := b.Input(8, 8, 8)
	y := b.Conv(x, 3, 1, 1, 8)
	y = b.BatchNorm(y)
	y = b.ReLU(y)
	y = b.GlobalAvgPool(y)
	logits := b.FC(y, 4)
	prog, err := b.Train(logits)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Budget: force at least one stash.
	peakAll := uint64(0)
	for k := range prog.Kernels {
		if l := plan.LiveBytesAt(k) + prog.WeightBytes(); l > peakAll {
			peakAll = l
		}
	}
	budget := peakAll * 9 / 10
	exact, err := SolveExact(plan, budget, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("tiny instance did not finish the exact search")
	}
	// Brute force over all candidate subsets.
	p := newStashProblem(plan, budget)
	n := len(p.candidates)
	if n > 16 {
		t.Skipf("instance too large to brute force: %d candidates", n)
	}
	best := -1.0
	for mask := 0; mask < 1<<n; mask++ {
		set := map[int]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set[p.candidates[i]] = true
			}
		}
		if _, ok := p.feasible(set); !ok {
			continue
		}
		c := p.totalCost(set)
		if best < 0 || c < best {
			best = c
		}
	}
	if best < 0 {
		t.Fatal("no feasible subset found by brute force")
	}
	if diff := exact.MoveCost - best; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("exact cost %.6g != brute-force optimum %.6g", exact.MoveCost, best)
	}
}

// TestExecuteStaticRunsAndFits: the offline plan executes with bounded
// residency and produces the stash/restore traffic it planned.
func TestExecuteStaticRunsAndFits(t *testing.T) {
	plan := buildPlan(t, 64)
	budget := mem.AlignUp(plan.HeapSize/3, mem.Line)
	sp, err := SolveGreedy(plan, budget)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, core.Mode1LM, mem.AlignUp(budget/5, mem.Line))
	res, err := ExecuteStatic(plan, sys, sp, Config{DRAMBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Counters.Demand() == 0 {
		t.Error("no execution happened")
	}
	if sp.StashedBytes() > 0 && (res.MoveOutBytes == 0 || res.MoveInBytes == 0) {
		t.Errorf("planned stashes produced no movement: out=%d in=%d", res.MoveOutBytes, res.MoveInBytes)
	}
	// Dead-data elision carries over: writes never exceed reads by
	// more than the final unstashed set.
	if res.Counters.NVRAMWrite > res.Counters.NVRAMRead+res.Counters.NVRAMWrite/5 {
		t.Errorf("static execution wrote dead data: %v", res.Counters)
	}
}

// TestExecuteStaticRejectsMismatchedPlan and undersized budgets.
func TestExecuteStaticRejects(t *testing.T) {
	plan := buildPlan(t, 16)
	other := buildPlan(t, 16)
	sp, err := SolveGreedy(plan, plan.HeapSize)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, core.Mode1LM, mem.MiB)
	if _, err := ExecuteStatic(other, sys, sp, Config{}); err == nil {
		t.Error("mismatched plan accepted")
	}
	if _, err := ExecuteStatic(plan, sys, sp, Config{DRAMBudget: mem.Line}); err == nil {
		t.Error("undersized budget accepted")
	}
	sys2 := newSystem(t, core.Mode2LM, mem.MiB)
	if _, err := ExecuteStatic(plan, sys2, sp, Config{}); err == nil {
		t.Error("2LM system accepted")
	}
}

// TestOnlineVsOfflineComparable: both policies complete the same
// program under the same budget with traffic in the same ballpark.
func TestOnlineVsOfflineComparable(t *testing.T) {
	plan := buildPlan(t, 64)
	budget := mem.AlignUp(plan.HeapSize/3, mem.Line)

	onlineSys := newSystem(t, core.Mode1LM, mem.AlignUp(budget/5, mem.Line))
	online, err := Execute(plan, onlineSys, Config{DRAMBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SolveGreedy(plan, budget)
	if err != nil {
		t.Fatal(err)
	}
	offlineSys := newSystem(t, core.Mode1LM, mem.AlignUp(budget/5, mem.Line))
	offline, err := ExecuteStatic(plan, offlineSys, sp, Config{DRAMBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if online.Elapsed <= 0 || offline.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	ratio := offline.Elapsed / online.Elapsed
	if ratio > 3 || ratio < 1.0/3 {
		t.Errorf("offline/online runtime ratio %.2f outside sanity band", ratio)
	}
}
