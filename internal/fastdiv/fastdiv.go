// Package fastdiv implements division by a runtime-fixed 64-bit
// divisor without a divide instruction, using a precomputed reciprocal
// "magic" multiplier (Hacker's Delight chapter 10; the same
// strength reduction compilers apply to division by constants, done at
// run time for divisors fixed at construction).
//
// The demand pipeline of this simulator splits an address into
// (set, tag) or (channel, offset) on every single simulated line, and
// the set and channel counts — cache sets, DRAM channels, NVRAM DIMMs —
// are fixed when the system is built but unknown at compile time, so
// the compiler cannot strength-reduce them itself. A 64-bit integer
// divide costs tens of cycles on current cores; the multiply-shift
// sequence here costs a handful, which is the difference between the
// tag check and the divide dominating the per-line cost.
//
// Divisors that are powers of two reduce to shift/mask. All quotients
// and remainders are exact for every uint64 numerator; the package
// test proves this property against the hardware divider.
package fastdiv

import (
	"fmt"
	"math/bits"
)

// Divisor divides uint64 numerators by a fixed divisor using a
// precomputed magic multiplier. The zero value is not usable;
// construct with New.
type Divisor struct {
	d     uint64 // the divisor
	m     uint64 // magic multiplier (low 64 bits when add is set)
	shift uint   // post-multiply shift
	add   bool   // magic is 2^64 + m: use the add-and-halve fixup
	pow2  bool   // divisor is a power of two: shift/mask directly
}

// New returns a Divisor for d. d must be nonzero; a zero divisor is a
// construction-time programming error, not a data error, so it panics.
func New(d uint64) Divisor {
	if d == 0 {
		panic("fastdiv: zero divisor")
	}
	if d&(d-1) == 0 {
		return Divisor{d: d, shift: uint(bits.TrailingZeros64(d)), pow2: true}
	}
	m, s, add := magicu(d)
	return Divisor{d: d, m: m, shift: s, add: add}
}

// Value returns the divisor.
func (v Divisor) Value() uint64 { return v.d }

// Div returns n / v.
func (v Divisor) Div(n uint64) uint64 {
	switch {
	case v.pow2:
		return n >> v.shift
	case v.add:
		// Magic is 2^64 + m: q = (n + mulhi(m, n)) >> shift, computed
		// without overflowing via the add-and-halve identity.
		t, _ := bits.Mul64(v.m, n)
		return (((n - t) >> 1) + t) >> (v.shift - 1)
	default:
		t, _ := bits.Mul64(v.m, n)
		return t >> v.shift
	}
}

// Mod returns n % v.
func (v Divisor) Mod(n uint64) uint64 {
	if v.pow2 {
		return n & (v.d - 1)
	}
	return n - v.Div(n)*v.d
}

// DivMod returns n / v and n % v with one reciprocal multiply.
func (v Divisor) DivMod(n uint64) (q, r uint64) {
	if v.pow2 {
		return n >> v.shift, n & (v.d - 1)
	}
	q = v.Div(n)
	return q, n - q*v.d
}

// String implements fmt.Stringer for debugging.
func (v Divisor) String() string {
	if v.pow2 {
		return fmt.Sprintf("fastdiv(%d: >>%d)", v.d, v.shift)
	}
	return fmt.Sprintf("fastdiv(%d: m=%#x s=%d add=%v)", v.d, v.m, v.shift, v.add)
}

// magicu computes the magic multiplier, shift, and add indicator for
// unsigned division by d (Hacker's Delight figure 10-2, generalized to
// 64 bits). When add is false, n/d = mulhi(m, n) >> shift for all n;
// when true the true magic is 2^64 + m and Div applies the
// add-and-halve fixup.
func magicu(d uint64) (m uint64, shift uint, add bool) {
	const two63 = uint64(1) << 63
	p := uint(63)
	nc := ^uint64(0) - (^uint64(0)-d+1)%d // largest n with n % d == d-1
	q1 := two63 / nc
	r1 := two63 - q1*nc
	q2 := (two63 - 1) / d
	r2 := (two63 - 1) - q2*d
	var delta uint64
	for {
		p++
		if r1 >= nc-r1 {
			q1 = 2*q1 + 1
			r1 = 2*r1 - nc
		} else {
			q1 = 2 * q1
			r1 = 2 * r1
		}
		if r2+1 >= d-r2 {
			if q2 >= two63-1 {
				add = true
			}
			q2 = 2*q2 + 1
			r2 = 2*r2 + 1 - d
		} else {
			if q2 >= two63 {
				add = true
			}
			q2 = 2 * q2
			r2 = 2*r2 + 1
		}
		delta = d - 1 - r2
		if p >= 128 || (q1 >= delta && !(q1 == delta && r1 == 0)) {
			break
		}
	}
	return q2 + 1, p - 64, add
}
