package fastdiv

import (
	"math"
	"math/rand"
	"testing"
)

// interestingNumerators are boundary values every divisor must handle.
func interestingNumerators(d uint64) []uint64 {
	ns := []uint64{0, 1, 2, 3, 62, 63, 64, 65, 1000, math.MaxUint32,
		math.MaxUint32 + 1, math.MaxUint64, math.MaxUint64 - 1, 1 << 62, (1 << 62) + 1}
	// Multiples of d and their neighbors exercise quotient boundaries.
	for _, k := range []uint64{1, 2, 3, 1000, 1 << 20} {
		m := d * k
		ns = append(ns, m-1, m, m+1)
	}
	if d > 1 {
		q := math.MaxUint64 / d
		ns = append(ns, q*d-1, q*d, q*d+1)
	}
	return ns
}

// checkDivisor asserts Div/Mod/DivMod agree with the hardware divider
// for the given numerator.
func checkDivisor(t *testing.T, v Divisor, n uint64) {
	t.Helper()
	d := v.Value()
	if got, want := v.Div(n), n/d; got != want {
		t.Fatalf("Div(%d) by %d (%v) = %d, want %d", n, d, v, got, want)
	}
	if got, want := v.Mod(n), n%d; got != want {
		t.Fatalf("Mod(%d) by %d (%v) = %d, want %d", n, d, v, got, want)
	}
	q, r := v.DivMod(n)
	if q != n/d || r != n%d {
		t.Fatalf("DivMod(%d) by %d (%v) = %d,%d, want %d,%d", n, d, v, q, r, n/d, n%d)
	}
}

// TestExhaustiveSmallDivisors checks every divisor the simulator
// realistically configures (set counts, channel counts, DIMM counts,
// way counts) against boundary and random numerators.
func TestExhaustiveSmallDivisors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := uint64(1); d <= 4096; d++ {
		v := New(d)
		for _, n := range interestingNumerators(d) {
			checkDivisor(t, v, n)
		}
		for i := 0; i < 64; i++ {
			checkDivisor(t, v, rng.Uint64())
		}
	}
}

// TestRandomLargeDivisors checks arbitrary divisors across the whole
// 64-bit range, including the >= 2^63 regime where the quotient is
// 0 or 1.
func TestRandomLargeDivisors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		d := rng.Uint64()
		if d == 0 {
			d = 1
		}
		v := New(d)
		for _, n := range []uint64{0, 1, d - 1, d, d + 1, math.MaxUint64, rng.Uint64(), rng.Uint64()} {
			checkDivisor(t, v, n)
		}
	}
}

// TestPowersOfTwo checks the shift/mask fast path at every width.
func TestPowersOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for s := uint(0); s < 64; s++ {
		v := New(1 << s)
		for _, n := range interestingNumerators(1 << s) {
			checkDivisor(t, v, n)
		}
		for i := 0; i < 64; i++ {
			checkDivisor(t, v, rng.Uint64())
		}
	}
}

// TestSimulatorDivisors pins the exact divisors the demand pipeline
// precomputes: the Cascade Lake channel count, scaled LLC set counts
// (33 MiB is not a power of two), and scaled DRAM cache set counts.
func TestSimulatorDivisors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []uint64{6, 12, 528, 33 * 1024, 393216, 786432, 3 * (1 << 20)} {
		v := New(d)
		for i := 0; i < 100000; i++ {
			checkDivisor(t, v, rng.Uint64())
		}
	}
}

// TestZeroDivisorPanics pins the construction contract.
func TestZeroDivisorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
