package platform

import (
	"testing"

	"twolm/internal/mem"
)

func TestCascadeLakeCapacities(t *testing.T) {
	cfg := CascadeLake(1, 1, 24)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.DRAMSize(); got != 192*mem.GiB {
		t.Errorf("DRAM = %s, want 192 GiB", mem.FormatBytes(got))
	}
	if got := cfg.NVRAMSize(); got != 3*mem.TiB {
		t.Errorf("NVRAM = %s, want 3 TiB", mem.FormatBytes(got))
	}
	two := CascadeLake(2, 1, 96)
	if two.DRAMSize() != 384*mem.GiB || two.NVRAMSize() != 6*mem.TiB {
		t.Error("two-socket capacities wrong")
	}
	if two.Channels() != 12 {
		t.Errorf("channels = %d, want 12", two.Channels())
	}
}

func TestScaledCapacities(t *testing.T) {
	cfg := CascadeLake(1, 1024, 24)
	if got := cfg.DRAMSize(); got != 192*mem.MiB {
		t.Errorf("scaled DRAM = %s, want 192 MiB", mem.FormatBytes(got))
	}
	if got := cfg.ScaleBytes(688 * uint64(1e9)); got < 600*mem.MiB || got > 700*mem.MiB {
		t.Errorf("ScaleBytes(688GB) = %s", mem.FormatBytes(got))
	}
	n := cfg.ScaleBytes(1000)
	if n%mem.Line != 0 {
		t.Error("ScaleBytes result not line aligned")
	}
	if cfg.UnscaleBytes(cfg.DRAMSize()) != 192*mem.GiB {
		t.Error("UnscaleBytes did not invert")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Sockets: 0, ChannelsPerSocket: 6, DRAMPerChannel: mem.GiB, NVRAMPerChannel: mem.GiB, Scale: 1, Threads: 1},
		{Sockets: 1, ChannelsPerSocket: 0, DRAMPerChannel: mem.GiB, NVRAMPerChannel: mem.GiB, Scale: 1, Threads: 1},
		{Sockets: 1, ChannelsPerSocket: 6, DRAMPerChannel: mem.GiB, NVRAMPerChannel: mem.GiB, Scale: 0, Threads: 1},
		{Sockets: 1, ChannelsPerSocket: 6, DRAMPerChannel: mem.GiB, NVRAMPerChannel: mem.GiB, Scale: 3, Threads: 1},
		{Sockets: 1, ChannelsPerSocket: 6, DRAMPerChannel: mem.GiB, NVRAMPerChannel: mem.GiB, Scale: 1, Threads: 0},
		{Sockets: 1, ChannelsPerSocket: 1, DRAMPerChannel: 64, NVRAMPerChannel: 64, Scale: 4, Threads: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAddressSpace1LMLayout(t *testing.T) {
	cfg := CascadeLake(1, 1024, 24)
	s := NewAddressSpace(cfg, false)
	if s.DRAMBoundary() != cfg.DRAMSize() {
		t.Errorf("DRAM boundary = %d, want %d", s.DRAMBoundary(), cfg.DRAMSize())
	}
	d, err := s.AllocDRAM(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolOf(d.Base) != PoolDRAM {
		t.Error("DRAM allocation not in DRAM pool")
	}
	n, err := s.AllocNVRAM(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolOf(n.Base) != PoolNVRAM {
		t.Error("NVRAM allocation not in NVRAM pool")
	}
	if d.Contains(n.Base) || n.Contains(d.Base) {
		t.Error("pools overlap")
	}
}

func TestAddressSpaceNUMAPreferred(t *testing.T) {
	cfg := CascadeLake(1, 1024, 24)
	s := NewAddressSpace(cfg, false)
	// First allocation fits DRAM.
	a, err := s.Alloc(cfg.DRAMSize() / 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolOf(a.Base) != PoolDRAM {
		t.Error("first alloc should prefer DRAM")
	}
	// Second allocation exceeds remaining DRAM and must spill to NVRAM.
	b, err := s.Alloc(cfg.DRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolOf(b.Base) != PoolNVRAM {
		t.Error("oversized alloc should spill to NVRAM")
	}
}

func TestAddressSpace2LM(t *testing.T) {
	cfg := CascadeLake(1, 1024, 24)
	s := NewAddressSpace(cfg, true)
	if _, err := s.AllocDRAM(mem.MiB); err == nil {
		t.Error("2LM mode should have no DRAM pool")
	}
	r, err := s.Alloc(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base != 0 {
		t.Errorf("2LM space should start at 0, got %#x", r.Base)
	}
	if s.DRAMFree() != 0 {
		t.Error("2LM DRAMFree should be 0")
	}
}

func TestAllocExhaustion(t *testing.T) {
	cfg := Config{Sockets: 1, ChannelsPerSocket: 1, DRAMPerChannel: mem.MiB, NVRAMPerChannel: 2 * mem.MiB, Scale: 1, Threads: 1}
	s := NewAddressSpace(cfg, false)
	if _, err := s.AllocDRAM(2 * mem.MiB); err == nil {
		t.Error("DRAM over-allocation accepted")
	}
	if _, err := s.AllocNVRAM(4 * mem.MiB); err == nil {
		t.Error("NVRAM over-allocation accepted")
	}
	if _, err := s.AllocNVRAM(2 * mem.MiB); err != nil {
		t.Errorf("exact-fit NVRAM allocation rejected: %v", err)
	}
	if s.NVRAMFree() != 0 {
		t.Errorf("NVRAMFree = %d after exhaustion", s.NVRAMFree())
	}
}

func TestAllocAlignment(t *testing.T) {
	cfg := CascadeLake(1, 1024, 24)
	s := NewAddressSpace(cfg, false)
	a, _ := s.Alloc(10) // sub-line request
	if a.Size != mem.Line {
		t.Errorf("allocation size %d not rounded to line", a.Size)
	}
	b, _ := s.Alloc(10)
	if b.Base%mem.Line != 0 {
		t.Errorf("allocation base %#x not line aligned", b.Base)
	}
	if a.End() > b.Base {
		t.Error("allocations overlap")
	}
}

func TestPoolString(t *testing.T) {
	if PoolDRAM.String() != "dram" || PoolNVRAM.String() != "nvram" {
		t.Error("unexpected Pool strings")
	}
}
