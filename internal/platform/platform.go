// Package platform describes the simulated machine: socket and channel
// topology, DRAM and NVRAM capacities, footprint scaling, and the
// physical address layout used by the two operating modes:
//
//   - 2LM ("memory mode"): the whole address space is NVRAM-backed with
//     DRAM acting as a transparent direct-mapped cache.
//   - 1LM ("app-direct mode"): DRAM and NVRAM are separate pools; the
//     address space is split into a DRAM region followed by an NVRAM
//     region, like the kernel's NUMA-node layout when NVRAM regions are
//     exposed through daxctl.
//
// The paper's platform (Figure 1) is a two-socket Cascade Lake server
// with, per socket, six memory channels each holding a 32 GiB DDR4 DIMM
// and a 512 GiB Optane DC DIMM: 192 GiB DRAM + 3 TiB NVRAM per socket.
//
// Because the study's footprints (hundreds of GB) are impractical to
// simulate line-by-line, a Config carries a Scale divisor applied
// uniformly to all capacities. Direct-mapped conflict behavior under a
// linear allocator is invariant to uniform scaling, so the shape of
// every result is preserved (see DESIGN.md).
package platform

import (
	"fmt"

	"twolm/internal/mem"
)

// Config describes the simulated machine.
type Config struct {
	// Sockets participating in the experiment (the paper uses 1 for
	// microbenchmarks and CNNs, 2 for graphs).
	Sockets int

	// ChannelsPerSocket is the number of memory channels (6 on Cascade
	// Lake), each carrying one DRAM and one NVRAM DIMM.
	ChannelsPerSocket int

	// DRAMPerChannel and NVRAMPerChannel are unscaled capacities in
	// bytes (32 GiB and 512 GiB on the paper's platform).
	DRAMPerChannel  uint64
	NVRAMPerChannel uint64

	// Scale divides all capacities for tractable simulation; 1 means
	// full size. Must be a power of two so line alignment survives.
	Scale uint64

	// Threads is the worker-thread count the bandwidth model assumes.
	Threads int
}

// CascadeLake returns the paper's test platform at the given footprint
// scale (use 1024 for the default 1/1024 scaling) and thread count.
func CascadeLake(sockets int, scale uint64, threads int) Config {
	return Config{
		Sockets:           sockets,
		ChannelsPerSocket: 6,
		DRAMPerChannel:    32 * mem.GiB,
		NVRAMPerChannel:   512 * mem.GiB,
		Scale:             scale,
		Threads:           threads,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Sockets < 1 {
		return fmt.Errorf("platform: sockets %d < 1", c.Sockets)
	}
	if c.ChannelsPerSocket < 1 {
		return fmt.Errorf("platform: channels per socket %d < 1", c.ChannelsPerSocket)
	}
	if c.Scale == 0 || c.Scale&(c.Scale-1) != 0 {
		return fmt.Errorf("platform: scale %d must be a nonzero power of two", c.Scale)
	}
	if c.DRAMSize() < mem.Line || c.NVRAMSize() < mem.Line {
		return fmt.Errorf("platform: scaled capacities below one line")
	}
	if c.Threads < 1 {
		return fmt.Errorf("platform: threads %d < 1", c.Threads)
	}
	return nil
}

// DRAMSize returns the scaled total DRAM capacity in bytes.
func (c Config) DRAMSize() uint64 {
	return uint64(c.Sockets) * uint64(c.ChannelsPerSocket) * c.DRAMPerChannel / c.Scale
}

// NVRAMSize returns the scaled total NVRAM capacity in bytes.
func (c Config) NVRAMSize() uint64 {
	return uint64(c.Sockets) * uint64(c.ChannelsPerSocket) * c.NVRAMPerChannel / c.Scale
}

// Channels returns the total channel count across sockets.
func (c Config) Channels() int { return c.Sockets * c.ChannelsPerSocket }

// ScaleBytes converts an unscaled (paper-sized) byte count to the
// simulated scale, rounding up to a whole line.
func (c Config) ScaleBytes(n uint64) uint64 {
	return mem.AlignUp(n/c.Scale, mem.Line)
}

// UnscaleBytes converts a simulated byte count back to paper scale for
// reporting.
func (c Config) UnscaleBytes(n uint64) uint64 { return n * c.Scale }

// Pool identifies a memory pool in 1LM mode.
type Pool uint8

const (
	// PoolDRAM is socket-local DRAM.
	PoolDRAM Pool = iota
	// PoolNVRAM is app-direct NVRAM (a dax NUMA node).
	PoolNVRAM
)

// String implements fmt.Stringer.
func (p Pool) String() string {
	if p == PoolDRAM {
		return "dram"
	}
	return "nvram"
}

// AddressSpace is a bump allocator over the simulated physical address
// space. In 1LM mode the DRAM pool occupies [0, DRAMSize) and the NVRAM
// pool [DRAMSize, DRAMSize+NVRAMSize). In 2LM mode the whole space is
// one NVRAM-backed pool and Alloc draws from it directly.
type AddressSpace struct {
	cfg       Config
	twoLM     bool
	dramNext  uint64
	dramEnd   uint64
	nvramNext uint64
	nvramEnd  uint64
}

// NewAddressSpace returns an allocator for the configuration. twoLM
// selects memory-mode layout (single flat space of NVRAM capacity).
func NewAddressSpace(cfg Config, twoLM bool) *AddressSpace {
	s := &AddressSpace{cfg: cfg, twoLM: twoLM}
	if twoLM {
		// In 2LM the OS sees only the NVRAM capacity.
		s.dramEnd = 0
		s.nvramNext = 0
		s.nvramEnd = cfg.NVRAMSize()
	} else {
		s.dramNext = 0
		s.dramEnd = cfg.DRAMSize()
		s.nvramNext = cfg.DRAMSize()
		s.nvramEnd = cfg.DRAMSize() + cfg.NVRAMSize()
	}
	return s
}

// DRAMBoundary returns the first NVRAM address in 1LM layout (0 in 2LM,
// where DRAM is invisible).
func (s *AddressSpace) DRAMBoundary() uint64 { return s.dramEnd }

// PoolOf reports which pool an address belongs to in 1LM layout.
func (s *AddressSpace) PoolOf(addr uint64) Pool {
	if !s.twoLM && addr < s.dramEnd {
		return PoolDRAM
	}
	return PoolNVRAM
}

// Alloc reserves size bytes with NUMA-preferred policy: DRAM first (in
// 1LM), spilling to NVRAM when DRAM is exhausted — the policy the paper
// uses for its graph baseline ("threads will initially allocate memory
// on that socket's DRAM; when DRAM is exhausted, further allocations
// are serviced by NVRAM"). In 2LM it simply draws from the flat space.
func (s *AddressSpace) Alloc(size uint64) (mem.Region, error) {
	size = mem.AlignUp(size, mem.Line)
	if !s.twoLM && s.dramNext+size <= s.dramEnd {
		r := mem.Region{Base: s.dramNext, Size: size}
		s.dramNext += size
		return r, nil
	}
	return s.AllocNVRAM(size)
}

// AllocDRAM reserves size bytes of DRAM pool (1LM only).
func (s *AddressSpace) AllocDRAM(size uint64) (mem.Region, error) {
	if s.twoLM {
		return mem.Region{}, fmt.Errorf("platform: no distinct DRAM pool in 2LM mode")
	}
	size = mem.AlignUp(size, mem.Line)
	if s.dramNext+size > s.dramEnd {
		return mem.Region{}, fmt.Errorf("platform: DRAM pool exhausted (%s requested, %s free)",
			mem.FormatBytes(size), mem.FormatBytes(s.dramEnd-s.dramNext))
	}
	r := mem.Region{Base: s.dramNext, Size: size}
	s.dramNext += size
	return r, nil
}

// AllocNVRAM reserves size bytes of NVRAM pool (or flat 2LM space).
func (s *AddressSpace) AllocNVRAM(size uint64) (mem.Region, error) {
	size = mem.AlignUp(size, mem.Line)
	if s.nvramNext+size > s.nvramEnd {
		return mem.Region{}, fmt.Errorf("platform: NVRAM pool exhausted (%s requested, %s free)",
			mem.FormatBytes(size), mem.FormatBytes(s.nvramEnd-s.nvramNext))
	}
	r := mem.Region{Base: s.nvramNext, Size: size}
	s.nvramNext += size
	return r, nil
}

// DRAMFree returns the unallocated DRAM pool bytes (0 in 2LM).
func (s *AddressSpace) DRAMFree() uint64 {
	if s.twoLM {
		return 0
	}
	return s.dramEnd - s.dramNext
}

// NVRAMFree returns the unallocated NVRAM pool bytes.
func (s *AddressSpace) NVRAMFree() uint64 { return s.nvramEnd - s.nvramNext }
