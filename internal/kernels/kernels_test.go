package kernels

import (
	"testing"

	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func newSystem(t *testing.T, mode core.Mode) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets:           1,
			ChannelsPerSocket: 6,
			DRAMPerChannel:    mem.MiB,
			NVRAMPerChannel:   64 * mem.MiB,
			Scale:             1,
			Threads:           24,
		},
		Mode:     mode,
		LLCBytes: 16 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func alloc(t *testing.T, sys *core.System, size uint64) mem.Region {
	t.Helper()
	r, err := sys.AddressSpace().Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Granularity: 96}).Validate(); err == nil {
		t.Error("non-line-multiple granularity accepted")
	}
	if err := (Spec{Pattern: mem.InterleavedSeq}).Validate(); err == nil {
		t.Error("InterleavedSeq accepted as a kernel pattern")
	}
	if err := (Spec{Op: ReadOnly, Pattern: mem.Random, Granularity: 256}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{Op: WriteOnly, Pattern: mem.Random, Granularity: 256, Store: Nontemporal, Threads: 8}
	if got := s.Name(); got != "write-rand-256B-8t-nt" {
		t.Errorf("Name = %q", got)
	}
	r := Spec{Op: ReadOnly, Pattern: mem.Sequential, Threads: 4}
	if got := r.Name(); got != "read-seq-64B-4t" {
		t.Errorf("Name = %q", got)
	}
}

func TestRunRejectsBadRegion(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	if _, err := Run(sys, mem.Region{}, Spec{Op: ReadOnly}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := Run(sys, mem.Region{Base: 0, Size: 100}, Spec{Op: ReadOnly}); err == nil {
		t.Error("unaligned region accepted")
	}
}

// TestReadOnlyTouchesEveryLineOnce holds for both iteration orders.
func TestReadOnlyTouchesEveryLineOnce(t *testing.T) {
	for _, pattern := range []mem.Pattern{mem.Sequential, mem.Random} {
		sys := newSystem(t, core.Mode2LM)
		region := alloc(t, sys, mem.MiB)
		res, err := Run(sys, region, Spec{Op: ReadOnly, Pattern: pattern, Threads: 24})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delta.LLCRead != region.Lines() {
			t.Errorf("%v: LLC reads = %d, want %d", pattern, res.Delta.LLCRead, region.Lines())
		}
		if res.Demand != region.Size {
			t.Errorf("%v: demand = %d, want %d", pattern, res.Demand, region.Size)
		}
	}
}

// TestRandomGranularityClusters: a 256 B random element touches 4
// consecutive lines.
func TestRandomGranularityClusters(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, mem.MiB)
	res, err := Run(sys, region, Spec{Op: ReadOnly, Pattern: mem.Random, Granularity: 256, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.LLCRead != region.Lines() {
		t.Errorf("LLC reads = %d, want %d (every line exactly once)", res.Delta.LLCRead, region.Lines())
	}
}

// TestWriteOnlyNT: every line becomes an LLC write with no RFO.
func TestWriteOnlyNT(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, mem.MiB)
	res, err := Run(sys, region, Spec{Op: WriteOnly, Store: Nontemporal, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.LLCWrite != region.Lines() || res.Delta.LLCRead != 0 {
		t.Errorf("NT write-only: llcW=%d llcR=%d, want %d/0", res.Delta.LLCWrite, res.Delta.LLCRead, region.Lines())
	}
}

// TestWriteOnlyStandard: RFO per line plus a drained writeback.
func TestWriteOnlyStandard(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, mem.MiB)
	res, err := Run(sys, region, Spec{Op: WriteOnly, Store: Standard, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.LLCRead != region.Lines() {
		t.Errorf("standard write-only RFOs = %d, want %d", res.Delta.LLCRead, region.Lines())
	}
	if res.Delta.LLCWrite != region.Lines() {
		t.Errorf("standard write-only writebacks = %d, want %d", res.Delta.LLCWrite, region.Lines())
	}
}

// TestRMWNontemporal: loads plus NT stores, no RFO reuse.
func TestRMWNontemporal(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, mem.MiB)
	res, err := Run(sys, region, Spec{Op: ReadModifyWrite, Store: Nontemporal, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.LLCRead != region.Lines() || res.Delta.LLCWrite != region.Lines() {
		t.Errorf("NT RMW: llcR=%d llcW=%d, want %d each", res.Delta.LLCRead, res.Delta.LLCWrite, region.Lines())
	}
}

// TestIterationsRepeatDeterministically: two passes double the demand
// and, over an over-capacity array, keep a 100% miss rate (the paper's
// deterministic rerun methodology).
func TestIterationsRepeatDeterministically(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, 4*sys.Platform().DRAMSize())
	res, err := Run(sys, region, Spec{Op: ReadOnly, Pattern: mem.Random, Iterations: 2, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.LLCRead != 2*region.Lines() {
		t.Errorf("2 iterations LLC reads = %d, want %d", res.Delta.LLCRead, 2*region.Lines())
	}
	// Second pass must also be all misses thanks to the fixed seed.
	if hr := res.Delta.HitRate(); hr > 0.01 {
		t.Errorf("over-capacity rerun hit rate = %.3f, want ~0", hr)
	}
}

// TestPrimeFor: after a dirty prime, a read pass sees dirty misses.
func TestPrimeForDirty(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, 4*sys.Platform().DRAMSize())
	spec := Spec{Op: ReadOnly, Pattern: mem.Random, Threads: 24}
	if err := PrimeFor(sys, region, spec, true); err != nil {
		t.Fatal(err)
	}
	if sys.Counters().Demand() != 0 {
		t.Fatal("PrimeFor did not reset statistics")
	}
	res, err := Run(sys, region, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.TagMissDirty == 0 {
		t.Error("no dirty misses after dirty prime")
	}
	if res.Delta.TagHit != 0 {
		t.Errorf("hits after over-capacity prime: %d", res.Delta.TagHit)
	}
}

// TestPrimeCleanThenReadHits: a fitting array primed clean reads back
// with a 100% hit rate and amplification 1 (Table I read-hit row).
func TestPrimeCleanThenReadHits(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, sys.Platform().DRAMSize()/4)
	PrimeClean(sys, region)
	res, err := Run(sys, region, Spec{Op: ReadOnly, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.Delta.HitRate(); hr != 1 {
		t.Errorf("hit rate = %.3f, want 1", hr)
	}
	if amp := res.Delta.Amplification(); amp != 1 {
		t.Errorf("amplification = %.2f, want 1", amp)
	}
}

// TestPrimeDirtyThenNTWriteHits: Table I write-hit row — amp 2.
func TestPrimeDirtyThenNTWriteHits(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, sys.Platform().DRAMSize()/4)
	PrimeDirty(sys, region)
	res, err := Run(sys, region, Spec{Op: WriteOnly, Store: Nontemporal, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if amp := res.Delta.Amplification(); amp != 2 {
		t.Errorf("write-hit amplification = %.2f, want 2", amp)
	}
}

// TestEffectiveBWPositive and device bandwidth accessors.
func TestResultBandwidths(t *testing.T) {
	sys := newSystem(t, core.Mode2LM)
	region := alloc(t, sys, mem.MiB)
	res, err := Run(sys, region, Spec{Op: ReadOnly, Threads: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveBW() <= 0 || res.DRAMReadBW() <= 0 {
		t.Error("bandwidths should be positive")
	}
	if (Result{}).EffectiveBW() != 0 {
		t.Error("zero result should report 0 bandwidth")
	}
	if (Result{}).DRAMReadBW() != 0 {
		t.Error("zero result should report 0 device bandwidth")
	}
}

func TestOpAndStoreStrings(t *testing.T) {
	if ReadOnly.String() != "read" || WriteOnly.String() != "write" || ReadModifyWrite.String() != "rmw" {
		t.Error("unexpected Op strings")
	}
	if Op(9).String() == "" {
		t.Error("unknown Op should render")
	}
	if Standard.String() != "standard" || Nontemporal.String() != "nontemporal" {
		t.Error("unexpected StoreType strings")
	}
}

// Test1LMKernel: kernels drive app-direct systems identically.
func Test1LMKernel(t *testing.T) {
	sys := newSystem(t, core.Mode1LM)
	region, err := sys.AddressSpace().AllocNVRAM(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, region, Spec{Op: ReadOnly, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.NVRAMRead != region.Lines() {
		t.Errorf("1LM NVRAM reads = %d, want %d", res.Delta.NVRAMRead, region.Lines())
	}
	if res.Delta.DRAMRead != 0 {
		t.Errorf("1LM NVRAM kernel touched DRAM: %d", res.Delta.DRAMRead)
	}
}
