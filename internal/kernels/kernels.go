// Package kernels is the microbenchmark generator: the Go counterpart
// of the paper's custom Julia benchmark suite (KernelBenchmarks.jl).
//
// It produces low-overhead load and store loops over a memory region:
//
//   - read-only, write-only, and read-modify-write operations;
//   - sequential or pseudo-random iteration, where random iteration
//     touches every address exactly once using a maximum-length LFSR;
//   - access granularities from 64 B to 512 B for random iteration
//     (sequential iteration is granularity-indifferent, as the paper
//     observes);
//   - standard or nontemporal stores — nontemporal stores bypass the
//     on-chip cache and need no Read-For-Ownership;
//   - a modeled thread count, with data partitioned evenly across
//     threads.
//
// The kernels drive a core.System and report both the counter deltas
// and the effective bandwidth "as seen by the application".
package kernels

import (
	"fmt"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

// Op selects the memory operation the kernel performs on each element.
type Op uint8

const (
	// ReadOnly issues loads.
	ReadOnly Op = iota
	// WriteOnly issues stores.
	WriteOnly
	// ReadModifyWrite loads then stores each element.
	ReadModifyWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case ReadOnly:
		return "read"
	case WriteOnly:
		return "write"
	case ReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// StoreType selects the store instruction flavor.
type StoreType uint8

const (
	// Standard stores go through the cache hierarchy (RFO + delayed
	// writeback).
	Standard StoreType = iota
	// Nontemporal stores bypass the on-chip cache.
	Nontemporal
)

// String implements fmt.Stringer.
func (s StoreType) String() string {
	if s == Nontemporal {
		return "nontemporal"
	}
	return "standard"
}

// Spec describes one benchmark kernel.
type Spec struct {
	// Op is the operation mix.
	Op Op
	// Pattern is Sequential or Random iteration order.
	Pattern mem.Pattern
	// Granularity is the bytes touched per random-iteration element
	// (64–512 in the paper). Sequential iteration ignores it.
	Granularity int
	// Store selects standard or nontemporal stores (writes only).
	Store StoreType
	// Threads is the modeled worker count; data is partitioned evenly.
	Threads int
	// Iterations is the number of full passes over the region (>= 1).
	Iterations int
	// Seed seeds the LFSR for random iteration.
	Seed uint32
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Granularity <= 0 {
		s.Granularity = mem.Line
	}
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.Iterations <= 0 {
		s.Iterations = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Granularity%mem.Line != 0 {
		return fmt.Errorf("kernels: granularity %d not a multiple of %d", s.Granularity, mem.Line)
	}
	if s.Pattern == mem.InterleavedSeq {
		return fmt.Errorf("kernels: InterleavedSeq is an internal device-side pattern; use Sequential or Random")
	}
	return nil
}

// Name returns a compact identifier like "read-seq-64B-24t".
func (s Spec) Name() string {
	s = s.withDefaults()
	pat := "seq"
	if s.Pattern == mem.Random {
		pat = "rand"
	}
	name := fmt.Sprintf("%s-%s-%dB-%dt", s.Op, pat, s.Granularity, s.Threads)
	if s.Op != ReadOnly && s.Store == Nontemporal {
		name += "-nt"
	}
	return name
}

// Result reports one kernel execution.
type Result struct {
	Spec    Spec
	Region  mem.Region
	Delta   imc.Counters // counter increments caused by the kernel
	Elapsed float64      // seconds
	Demand  uint64       // CPU-visible bytes touched
}

// EffectiveBW returns demand bytes over elapsed seconds — the paper's
// application-visible bandwidth.
func (r Result) EffectiveBW() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Demand) / r.Elapsed
}

// DRAMReadBW returns the average DRAM read bandwidth in bytes/s.
func (r Result) DRAMReadBW() float64 { return r.bw(r.Delta.DRAMRead) }

// DRAMWriteBW returns the average DRAM write bandwidth in bytes/s.
func (r Result) DRAMWriteBW() float64 { return r.bw(r.Delta.DRAMWrite) }

// NVRAMReadBW returns the average NVRAM read bandwidth in bytes/s.
func (r Result) NVRAMReadBW() float64 { return r.bw(r.Delta.NVRAMRead) }

// NVRAMWriteBW returns the average NVRAM write bandwidth in bytes/s.
func (r Result) NVRAMWriteBW() float64 { return r.bw(r.Delta.NVRAMWrite) }

func (r Result) bw(lines uint64) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(lines*mem.Line) / r.Elapsed
}

// Run executes the kernel over region on sys and returns its result.
// The kernel drains the on-chip cache model at the end so delayed
// writebacks are charged to it, then closes the interval with a Sync.
func Run(sys *core.System, region mem.Region, spec Spec) (Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if region.Size == 0 || region.Size%mem.Line != 0 {
		return Result{}, fmt.Errorf("kernels: region size %d must be a positive line multiple", region.Size)
	}

	sys.SetThreads(spec.Threads)
	sys.SetTraffic(spec.Pattern, spec.Granularity)

	startCtr := sys.Counters()
	startDemand := sys.DemandBytes()
	startClock := sys.Clock()

	// Every pass reuses the same seed: the paper's generated benchmarks
	// are deterministic, which is also what makes repeat passes of an
	// over-capacity array miss on every access.
	for it := 0; it < spec.Iterations; it++ {
		if err := runPass(sys, region, spec, spec.Seed); err != nil {
			return Result{}, err
		}
	}
	sys.DrainLLC()
	sys.Sync(spec.Name(), 0)

	// Mirror the paper's methodology: validate the counters against
	// the expected data movement after every benchmark.
	if err := sys.ValidateCounters(); err != nil {
		return Result{}, fmt.Errorf("kernels: counter validation failed: %w", err)
	}

	return Result{
		Spec:    spec,
		Region:  region,
		Delta:   sys.Counters().Sub(startCtr),
		Elapsed: sys.Clock() - startClock,
		Demand:  sys.DemandBytes() - startDemand,
	}, nil
}

// runPass performs one full pass over the region.
func runPass(sys *core.System, region mem.Region, spec Spec, seed uint32) error {
	if spec.Pattern == mem.Sequential {
		sequentialPass(sys, region, spec)
		return nil
	}
	return randomPass(sys, region, spec, seed)
}

// touch applies the spec's operation to the lines of one element.
func touch(sys *core.System, base uint64, gran int, spec Spec) {
	end := base + uint64(gran)
	switch spec.Op {
	case ReadOnly:
		for a := base; a < end; a += mem.Line {
			sys.Load(a)
		}
	case WriteOnly:
		if spec.Store == Nontemporal {
			for a := base; a < end; a += mem.Line {
				sys.StoreNT(a)
			}
		} else {
			for a := base; a < end; a += mem.Line {
				sys.Store(a)
			}
		}
	case ReadModifyWrite:
		if spec.Store == Nontemporal {
			// Load then NT store: the store does not reuse the RFO.
			for a := base; a < end; a += mem.Line {
				sys.Load(a)
				sys.StoreNT(a)
			}
		} else {
			for a := base; a < end; a += mem.Line {
				sys.RMW(a)
			}
		}
	}
}

// sequentialPass streams the region in ascending order.
func sequentialPass(sys *core.System, region mem.Region, spec Spec) {
	// Sequential access is granularity-indifferent; walk line by line
	// using the fast range operations.
	switch spec.Op {
	case ReadOnly:
		sys.LoadRange(region)
	case WriteOnly:
		if spec.Store == Nontemporal {
			sys.StoreNTRange(region)
		} else {
			sys.StoreRange(region)
		}
	case ReadModifyWrite:
		if spec.Store == Nontemporal {
			for a := region.Base; a < region.End(); a += mem.Line {
				sys.Load(a)
				sys.StoreNT(a)
			}
		} else {
			sys.RMWRange(region)
		}
	}
}

// randomPass visits each granularity-sized element exactly once in
// LFSR order.
func randomPass(sys *core.System, region mem.Region, spec Spec, seed uint32) error {
	gran := uint64(spec.Granularity)
	elements := region.Size / gran
	if elements == 0 {
		elements = 1
		gran = region.Size
	}
	return lfsr.Sequence(elements, seed, func(i uint64) {
		touch(sys, region.Base+i*gran, int(gran), spec)
	})
}

// PrimeClean fills the DRAM cache with clean data by streaming loads
// over region (several passes would be identical; one suffices since
// the miss handler always inserts). The LLC is drained and statistics
// are reset afterwards, following the paper's prime-then-measure
// methodology.
func PrimeClean(sys *core.System, region mem.Region) {
	sys.SetTraffic(mem.Sequential, mem.Line)
	sys.LoadRange(region)
	sys.DrainLLC()
	sys.ResetStats()
}

// PrimeDirty makes the DRAM cache dirty by streaming nontemporal
// stores over region, then resets statistics.
func PrimeDirty(sys *core.System, region mem.Region) {
	sys.SetTraffic(mem.Sequential, mem.Line)
	sys.StoreNTRange(region)
	sys.DrainLLC()
	sys.ResetStats()
}

// PrimeFor prepares the cache for measuring spec by running one
// unmeasured pass in the *same* iteration order (the paper runs its
// deterministic benchmarks twice: once to prepare state, once to
// measure). dirty selects a nontemporal-store prime (leaving the cache
// dirty) versus a read prime (leaving it clean). Statistics are reset
// afterwards.
func PrimeFor(sys *core.System, region mem.Region, spec Spec, dirty bool) error {
	prime := spec.withDefaults()
	prime.Iterations = 1
	if dirty {
		prime.Op = WriteOnly
		prime.Store = Nontemporal
	} else {
		prime.Op = ReadOnly
	}
	if _, err := Run(sys, region, prime); err != nil {
		return err
	}
	sys.ResetStats()
	return nil
}
