package perfcounter

import (
	"strings"
	"testing"

	"twolm/internal/imc"
)

func TestSampleBandwidths(t *testing.T) {
	s := Sample{
		Dur:   0.5,
		Delta: imc.Counters{DRAMRead: 1000, DRAMWrite: 500, NVRAMRead: 250, NVRAMWrite: 125},
	}
	if got := s.DRAMReadBW(); got != float64(1000*64)/0.5 {
		t.Errorf("DRAMReadBW = %g", got)
	}
	if got := s.NVRAMWriteBW(); got != float64(125*64)/0.5 {
		t.Errorf("NVRAMWriteBW = %g", got)
	}
	zero := Sample{}
	if zero.DRAMReadBW() != 0 || zero.MIPS() != 0 {
		t.Error("zero-duration sample should report 0 rates")
	}
}

func TestSampleMIPS(t *testing.T) {
	s := Sample{Dur: 2, Instr: 4e9}
	if got := s.MIPS(); got != 2000 {
		t.Errorf("MIPS = %g, want 2000", got)
	}
}

func TestSeriesTotalsAndDuration(t *testing.T) {
	var ts Series
	ts.Append(Sample{Time: 1, Dur: 1, Delta: imc.Counters{DRAMRead: 10, TagHit: 5}})
	ts.Append(Sample{Time: 2, Dur: 1, Delta: imc.Counters{DRAMRead: 20, TagMissDirty: 3}})
	total := ts.Total()
	if total.DRAMRead != 30 || total.TagHit != 5 || total.TagMissDirty != 3 {
		t.Errorf("Total = %v", total)
	}
	if ts.Duration() != 2 {
		t.Errorf("Duration = %g, want 2", ts.Duration())
	}
	if ts.Len() != 2 {
		t.Errorf("Len = %d, want 2", ts.Len())
	}
}

func TestRebin(t *testing.T) {
	var ts Series
	for i := 0; i < 10; i++ {
		ts.Append(Sample{Time: float64(i+1) * 0.1, Dur: 0.1, Delta: imc.Counters{DRAMRead: 1}, Instr: 10})
	}
	binned := ts.Rebin(0.5)
	if binned.Len() != 2 {
		t.Fatalf("Rebin produced %d bins, want 2", binned.Len())
	}
	for _, b := range binned.Samples() {
		if b.Delta.DRAMRead != 5 || b.Instr != 50 {
			t.Errorf("bin = %+v, want 5 reads / 50 instr", b)
		}
	}
	// Totals must be conserved.
	if binned.Total() != ts.Total() {
		t.Error("Rebin lost counter events")
	}
	// Degenerate widths return the original series.
	if ts.Rebin(0) != &ts {
		t.Error("Rebin(0) should be identity")
	}
}

func TestRebinConservesPartialTail(t *testing.T) {
	var ts Series
	for i := 0; i < 7; i++ {
		ts.Append(Sample{Time: float64(i+1) * 0.1, Dur: 0.1, Delta: imc.Counters{NVRAMWrite: 2}})
	}
	binned := ts.Rebin(0.3)
	if binned.Total().NVRAMWrite != 14 {
		t.Errorf("partial tail dropped: total = %v", binned.Total())
	}
}

func TestWriteCSV(t *testing.T) {
	var ts Series
	ts.Append(Sample{Time: 0.5, Dur: 0.5, Delta: imc.Counters{DRAMRead: 100, TagHit: 7}, Label: "conv1"})
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "conv1") || !strings.Contains(lines[1], ",7,") {
		t.Errorf("row missing fields: %q", lines[1])
	}
}
