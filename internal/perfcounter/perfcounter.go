// Package perfcounter provides time-series sampling of the simulated
// uncore counters — the software analogue of the paper's methodology of
// reading the IMC performance counters at intervals during workload
// execution and correlating them with kernel timestamps.
package perfcounter

import (
	"fmt"
	"io"

	"twolm/internal/imc"
	"twolm/internal/telemetry"
)

// Sample is one observation: the simulated time at which the counters
// were read and the counter deltas since the previous sample, plus an
// optional label (e.g. the compute kernel executing in the interval).
type Sample struct {
	// Time is the simulated wall-clock time in seconds at the end of
	// the interval.
	Time float64
	// Dur is the interval length in seconds.
	Dur float64
	// Delta holds the counter increments during the interval.
	Delta imc.Counters
	// Instr is the number of instructions the compute model retired in
	// the interval (for the paper's Figure 5a MIPS plot).
	Instr uint64
	// Label annotates the interval (kernel name, phase, ...).
	Label string
}

// MIPS returns the interval's retired-instruction rate in millions of
// instructions per second.
func (s Sample) MIPS() float64 {
	if s.Dur <= 0 {
		return 0
	}
	return float64(s.Instr) / s.Dur / 1e6
}

// DRAMReadBW returns the interval's DRAM read bandwidth in bytes/s.
func (s Sample) DRAMReadBW() float64 { return bytesPerSec(s.Delta.DRAMRead, s.Dur) }

// DRAMWriteBW returns the interval's DRAM write bandwidth in bytes/s.
func (s Sample) DRAMWriteBW() float64 { return bytesPerSec(s.Delta.DRAMWrite, s.Dur) }

// NVRAMReadBW returns the interval's NVRAM read bandwidth in bytes/s.
func (s Sample) NVRAMReadBW() float64 { return bytesPerSec(s.Delta.NVRAMRead, s.Dur) }

// NVRAMWriteBW returns the interval's NVRAM write bandwidth in bytes/s.
func (s Sample) NVRAMWriteBW() float64 { return bytesPerSec(s.Delta.NVRAMWrite, s.Dur) }

func bytesPerSec(lines uint64, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(lines*64) / dur
}

// Series is an append-only sequence of samples.
type Series struct {
	samples []Sample
}

// Append records one sample.
func (ts *Series) Append(s Sample) { ts.samples = append(ts.samples, s) }

// Samples returns the recorded samples (shared backing array; callers
// must not mutate).
func (ts *Series) Samples() []Sample { return ts.samples }

// Len returns the number of samples.
func (ts *Series) Len() int { return len(ts.samples) }

// Total returns the field-wise sum of all sample deltas.
func (ts *Series) Total() imc.Counters {
	var total imc.Counters
	for _, s := range ts.samples {
		total = total.Add(s.Delta)
	}
	return total
}

// Duration returns the time covered by the series in seconds.
func (ts *Series) Duration() float64 {
	var d float64
	for _, s := range ts.samples {
		d += s.Dur
	}
	return d
}

// Rebin aggregates the series into bins of the given width in seconds,
// for rendering long traces at a readable resolution (the paper's
// Figure 10 uses a 2.5 s sliding average for the same reason).
func (ts *Series) Rebin(width float64) *Series {
	if width <= 0 || len(ts.samples) == 0 {
		return ts
	}
	out := &Series{}
	var acc Sample
	binEnd := ts.samples[0].Time - ts.samples[0].Dur + width
	for _, s := range ts.samples {
		acc.Delta = acc.Delta.Add(s.Delta)
		acc.Dur += s.Dur
		acc.Instr += s.Instr
		acc.Time = s.Time
		if acc.Label == "" {
			acc.Label = s.Label
		}
		if s.Time >= binEnd {
			out.Append(acc)
			acc = Sample{}
			binEnd += width
		}
	}
	if acc.Dur > 0 {
		out.Append(acc)
	}
	return out
}

// Emit replays the series into a telemetry sink as cumulative
// samples, bridging the legacy interval-delta representation onto the
// unified surface: deltas are re-accumulated in order and each sample
// carries the interval-end simulated time and label. It lets existing
// Sync-driven series feed the same sinks (trace artifacts, Prometheus)
// as the live range-boundary hooks.
func (ts *Series) Emit(sink telemetry.Sink) {
	if sink == nil {
		return
	}
	var cum imc.Counters
	for _, s := range ts.samples {
		cum = cum.Add(s.Delta)
		sink.Record(telemetry.Sample{
			Demand:       cum.Demand(),
			Clock:        s.Time,
			Label:        s.Label,
			LLCRead:      cum.LLCRead,
			LLCWrite:     cum.LLCWrite,
			DRAMRead:     cum.DRAMRead,
			DRAMWrite:    cum.DRAMWrite,
			NVRAMRead:    cum.NVRAMRead,
			NVRAMWrite:   cum.NVRAMWrite,
			TagHit:       cum.TagHit,
			TagMissClean: cum.TagMissClean,
			TagMissDirty: cum.TagMissDirty,
			DDO:          cum.DDO,
		})
	}
}

// WriteCSV emits the series with one row per sample: time, duration,
// bandwidths in GB/s, tag events, and label. The format matches what
// the paper's figures plot.
func (ts *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,dur_s,dram_read_gbs,dram_write_gbs,nvram_read_gbs,nvram_write_gbs,tag_hit,tag_miss_clean,tag_miss_dirty,ddo,label"); err != nil {
		return err
	}
	for _, s := range ts.samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f,%.3f,%.3f,%.3f,%.3f,%d,%d,%d,%d,%s\n",
			s.Time, s.Dur,
			s.DRAMReadBW()/1e9, s.DRAMWriteBW()/1e9,
			s.NVRAMReadBW()/1e9, s.NVRAMWriteBW()/1e9,
			s.Delta.TagHit, s.Delta.TagMissClean, s.Delta.TagMissDirty, s.Delta.DDO,
			s.Label); err != nil {
			return err
		}
	}
	return nil
}
