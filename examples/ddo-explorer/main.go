// DDO explorer: reproduces the paper's reverse-engineering of the
// Dirty Data Optimization (Section IV-C) — the memory controller's
// undocumented ability to skip the tag-check DRAM read for some LLC
// writebacks — by driving targeted access sequences at the controller
// and watching the counters, including the ablation with the
// optimization disabled.
package main

import (
	"fmt"
	"log"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func newSystem(disableDDO bool) *core.System {
	sys, err := core.New(core.Config{
		Platform: platform.CascadeLake(1, 4096, 4),
		Mode:     core.Mode2LM,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Controller().DisableDDO = disableDDO
	return sys
}

func perDemand(d imc.Counters) string {
	n := float64(d.Demand())
	return fmt.Sprintf("DRAM r/w %.2f/%.2f  NVRAM r/w %.2f/%.2f  amp %.2f  (DDO on %d of %d writes)",
		float64(d.DRAMRead)/n, float64(d.DRAMWrite)/n,
		float64(d.NVRAMRead)/n, float64(d.NVRAMWrite)/n,
		d.Amplification(), d.DDO, d.LLCWrite)
}

func main() {
	fmt.Println("Experiment 1: nontemporal store stream to resident lines")
	fmt.Println("  (no prior RFO, so the controller cannot skip the tag check)")
	sys := newSystem(false)
	array, _ := sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
	kernels.PrimeDirty(sys, array)
	res, err := kernels.Run(sys, array, kernels.Spec{Op: kernels.WriteOnly, Store: kernels.Nontemporal, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", perDemand(res.Delta))

	fmt.Println("\nExperiment 2: read-modify-write with standard stores")
	fmt.Println("  (each writeback follows an RFO of the same line)")
	sys = newSystem(false)
	array, _ = sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
	kernels.PrimeClean(sys, array)
	res, err = kernels.Run(sys, array, kernels.Spec{Op: kernels.ReadModifyWrite, Store: kernels.Standard, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", perDemand(res.Delta))
	fmt.Println("   -> every writeback skipped its tag check: amplification 1 per write")

	fmt.Println("\nExperiment 3: same RMW stream with the optimization disabled")
	sys = newSystem(true)
	array, _ = sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
	kernels.PrimeClean(sys, array)
	res, err = kernels.Run(sys, array, kernels.Spec{Op: kernels.ReadModifyWrite, Store: kernels.Standard, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", perDemand(res.Delta))
	fmt.Println("   -> each writeback now pays an extra DRAM read purely for the tag")

	fmt.Println("\nExperiment 4: conflict between RFO and writeback kills the DDO")
	fmt.Println("  (an aliasing line is read between the store's RFO and eviction)")
	sys = newSystem(false)
	ctrl := sys.Controller()
	addr := uint64(128 * mem.Line)
	aliased := addr + ctrl.Cache.Capacity()
	ctrl.LLCRead(addr)    // RFO: LLC owns the line
	ctrl.LLCRead(aliased) // conflict re-allocates the set
	before := ctrl.Counters()
	_, ddo := ctrl.LLCWrite(addr) // delayed writeback arrives
	d := ctrl.Counters().Sub(before)
	fmt.Printf("   writeback used DDO: %v; it cost %d DRAM reads and %d NVRAM reads\n",
		ddo, d.DRAMRead, d.NVRAMRead)
	fmt.Println("   -> the set was re-allocated, so the controller had to check tags")
	fmt.Println("      (and the write itself became a fresh miss).")
}
