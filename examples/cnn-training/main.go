// CNN training under hardware vs software memory management: builds
// the paper's DenseNet 264 training program, runs one iteration on a
// 2LM system and one under AutoTM-style tensor movement on the same
// platform in app-direct mode, and compares runtime and traffic — the
// paper's Section V / Table II experiment as a program.
package main

import (
	"fmt"
	"log"

	"twolm/internal/autotm"
	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/nn"
	"twolm/internal/platform"
)

func main() {
	const (
		scale = 2048 // footprint divisor; DRAM cache becomes 96 MiB
		batch = 832  // ~340 GB unscaled footprint
	)

	fmt.Println("building DenseNet 264 training program...")
	prog, err := nn.DenseNet264(batch)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := compiler.Compile(prog, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d kernels (%d forward), %d tensors, footprint %s scaled (%s at full size)\n\n",
		len(plan.Prog.Kernels), plan.Prog.ForwardKernels, len(plan.Prog.Tensors),
		mem.FormatBytes(plan.HeapSize), mem.FormatBytes(plan.HeapSize*scale))

	// Hardware-managed: 2LM memory mode.
	sys2, err := core.New(core.Config{Platform: platform.CascadeLake(1, scale, 24), Mode: core.Mode2LM})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := compiler.Execute(plan, sys2, compiler.ExecConfig{WarmupIterations: 1})
	if err != nil {
		log.Fatal(err)
	}
	c2 := r2.Counters
	fmt.Printf("2LM (hardware cache):   %8.3f s/iter  hit %.2f  dirty misses %d  NVRAM W %s\n",
		r2.Elapsed*scale, c2.HitRate(), c2.TagMissDirty, mem.FormatBytes(r2.NVRAMWriteBytes()*scale))

	// Software-managed: AutoTM over app-direct mode.
	sys1, err := core.New(core.Config{Platform: platform.CascadeLake(1, scale, 24), Mode: core.Mode1LM})
	if err != nil {
		log.Fatal(err)
	}
	r1, err := autotm.Execute(plan, sys1, autotm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoTM (software):      %8.3f s/iter  moved in %s / out %s  NVRAM W %s\n\n",
		r1.Elapsed*scale,
		mem.FormatBytes(r1.MoveInBytes*scale), mem.FormatBytes(r1.MoveOutBytes*scale),
		mem.FormatBytes(r1.NVRAMWriteBytes()*scale))

	fmt.Printf("speedup: %.2fx (the paper reports 3.1x for DenseNet 264)\n", r2.Elapsed/r1.Elapsed)
	nvRatio := float64(r1.NVRAMReadBytes()+r1.NVRAMWriteBytes()) /
		float64(r2.NVRAMReadBytes()+r2.NVRAMWriteBytes())
	fmt.Printf("AutoTM NVRAM traffic:   %.0f%% of 2LM's (paper: 50-60%%)\n", nvRatio*100)
	fmt.Println("\nAutoTM knows which tensors are dead and never writes them back;")
	fmt.Println("the hardware cache cannot, and pays NVRAM write bandwidth for data")
	fmt.Println("the program will overwrite before reading.")
}
