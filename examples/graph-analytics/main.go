// Graph analytics over NVRAM, three ways: pagerank-push on a web-scale
// (scaled-down) graph in 2LM memory mode, in app-direct mode with
// NUMA-preferred allocation, and with Sage-style semi-asymmetric
// placement — the paper's Section VI / VII-A-2 comparison as a program.
package main

import (
	"fmt"
	"log"

	"twolm/internal/analytics"
	"twolm/internal/core"
	"twolm/internal/graph"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/sage"
)

func main() {
	const (
		platScale = 8192 // two sockets: DRAM cache becomes 48 MiB
		prRounds  = 4
	)

	fmt.Println("generating a web-crawl-shaped graph exceeding the DRAM cache...")
	g, err := graph.WebLike(20, 14, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d edges, CSR %s\n\n",
		g.Name, g.NumNodes(), g.NumEdges(), mem.FormatBytes(g.Bytes()))

	base := analytics.Config{Threads: 96, PRRounds: prRounds}

	newSys := func(mode core.Mode) *core.System {
		sys, err := core.New(core.Config{Platform: platform.CascadeLake(2, platScale, 96), Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	report := func(name string, res analytics.Result) {
		d := res.Delta
		fmt.Printf("%-22s %8.2f s  DRAM %6.1f GB/s  NVRAM r/w %5.1f/%4.1f GB/s  dirty misses %d\n",
			name, res.Elapsed*platScale,
			float64((d.DRAMRead+d.DRAMWrite)*mem.Line)/res.Elapsed/mem.GB,
			float64(d.NVRAMRead*mem.Line)/res.Elapsed/mem.GB,
			float64(d.NVRAMWrite*mem.Line)/res.Elapsed/mem.GB,
			d.TagMissDirty)
	}

	// 1. Hardware-managed 2LM.
	sys := newSys(core.Mode2LM)
	layout, err := g.Place(sys.AddressSpace().Alloc)
	if err != nil {
		log.Fatal(err)
	}
	cfg := base
	cfg.Sys, cfg.G, cfg.Layout, cfg.AllocProp = sys, g, layout, sys.AddressSpace().Alloc
	r2lm, err := analytics.PageRank(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("2LM (memory mode):", r2lm)

	// 2. App-direct, NUMA-preferred allocation (DRAM first, spill to
	// NVRAM) — the kernel's default policy.
	sys = newSys(core.Mode1LM)
	layout, err = g.Place(sys.AddressSpace().Alloc)
	if err != nil {
		log.Fatal(err)
	}
	cfg = base
	cfg.Sys, cfg.G, cfg.Layout, cfg.AllocProp = sys, g, layout, sys.AddressSpace().Alloc
	rnuma, err := analytics.PageRank(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("1LM (NUMA-preferred):", rnuma)

	// 3. Sage-style: graph read-only in NVRAM, mutable state in DRAM.
	session, err := sage.New(newSys(core.Mode1LM), g)
	if err != nil {
		log.Fatal(err)
	}
	rsage, err := session.PageRank(base)
	if err != nil {
		log.Fatal(err)
	}
	report("Sage (semi-asymmetric):", rsage)

	fmt.Printf("\nSage vs 2LM speedup: %.2fx, with %d NVRAM writes instead of %d\n",
		r2lm.Elapsed/rsage.Elapsed, rsage.Delta.NVRAMWrite, r2lm.Delta.NVRAMWrite)
	fmt.Println("Keeping mutation out of NVRAM sidesteps both the device's low write")
	fmt.Println("bandwidth and the 2LM cache's 4-5x dirty-miss amplification.")
}
