// Recommendation-model embedding tables over NVRAM: the workload the
// paper's introduction motivates alongside CNNs and graphs ("emerging
// machine learning models in NLP and recommendation engines (such as
// GPT3 and DLRM) can have over 100 billion parameters"). Sparse,
// Zipf-skewed lookups into tables that dwarf DRAM — served by the
// hardware 2LM cache versus a Bandana-style software split (hot rows
// pinned in DRAM, cold rows in NVRAM, update batching).
package main

import (
	"fmt"
	"log"

	"twolm/internal/core"
	"twolm/internal/embed"
	"twolm/internal/experiments"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func main() {
	const scale = 4096 // 48 MiB DRAM on the scaled platform

	model := embed.DefaultConfig() // 8 tables x 128Ki rows x 64 dims = 256 MiB
	fmt.Printf("embedding model: %d tables x %d rows x %d dims = %s (DRAM: %s)\n\n",
		model.Tables, model.RowsPerTable, model.Dim,
		mem.FormatBytes(model.TotalBytes()),
		mem.FormatBytes(platform.CascadeLake(1, scale, 24).DRAMSize()))

	table, err := experiments.EmbedStudy(experiments.EmbedConfig{
		Scale: scale,
		Model: model,
		Steps: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.String())

	// A closer look at the training traffic under both placements.
	model.Train = true
	sys2, err := core.New(core.Config{Platform: platform.CascadeLake(1, scale, 24), Mode: core.Mode2LM})
	if err != nil {
		log.Fatal(err)
	}
	hw, err := embed.New(sys2, model, embed.Flat2LM)
	if err != nil {
		log.Fatal(err)
	}
	hwRes, err := hw.Run(8)
	if err != nil {
		log.Fatal(err)
	}

	sys1, err := core.New(core.Config{Platform: platform.CascadeLake(1, scale, 24), Mode: core.Mode1LM})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := embed.New(sys1, model, embed.SoftwareManaged)
	if err != nil {
		log.Fatal(err)
	}
	swRes, err := sw.Run(8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training, %d lookups + %d updates each:\n", hwRes.Lookups, hwRes.Updates)
	fmt.Printf("  2LM:      amplification %.2f, %6d dirty misses, %6d NVRAM writes\n",
		hwRes.Counters.Amplification(), hwRes.Counters.TagMissDirty, hwRes.Counters.NVRAMWrite)
	fmt.Printf("  software: amplification %.2f, %6d dirty misses, %6d NVRAM writes\n",
		swRes.Counters.Amplification(), swRes.Counters.TagMissDirty, swRes.Counters.NVRAMWrite)
	nv2 := hwRes.Counters.NVRAMRead + hwRes.Counters.NVRAMWrite
	nv1 := swRes.Counters.NVRAMRead + swRes.Counters.NVRAMWrite
	fmt.Printf("\nsoftware placement serves the same traffic with %.0f%% of 2LM's NVRAM\n", 100*float64(nv1)/float64(nv2))
	fmt.Println("accesses - the Bandana claim: equal service, a fraction of the device")
	fmt.Println("wear, and no hardware tag metadata in the way.")
}
