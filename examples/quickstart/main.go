// Quickstart: build a simulated Cascade Lake NVRAM platform in 2LM
// (memory mode), stream a working set through it that exceeds the DRAM
// cache, and read the uncore counters — the 60-second tour of the
// library's core API.
package main

import (
	"fmt"
	"log"

	"twolm/internal/core"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func main() {
	// One socket of the paper's test platform at 1/1024 footprint
	// scale: 192 MiB of DRAM acting as a direct-mapped cache in front
	// of 3 GiB of NVRAM.
	sys, err := core.New(core.Config{
		Platform: platform.CascadeLake(1, 1024, 24),
		Mode:     core.Mode2LM,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys)

	// An array over twice the DRAM-cache capacity: every access in
	// steady state is a miss.
	array, err := sys.AddressSpace().Alloc(2 * sys.Platform().DRAMSize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %s at %v\n\n", mem.FormatBytes(array.Size), array)

	// Prime the cache the way the paper does, then measure one
	// sequential read pass with 24 threads.
	kernels.PrimeClean(sys, array)
	res, err := kernels.Run(sys, array, kernels.Spec{
		Op:      kernels.ReadOnly,
		Pattern: mem.Sequential,
		Threads: 24,
	})
	if err != nil {
		log.Fatal(err)
	}

	d := res.Delta
	fmt.Printf("demand:       %s in %.3f ms\n", mem.FormatBytes(res.Demand), res.Elapsed*1e3)
	fmt.Printf("effective BW: %.1f GB/s (the application's view)\n", res.EffectiveBW()/mem.GB)
	fmt.Printf("DRAM:         %d reads, %d writes\n", d.DRAMRead, d.DRAMWrite)
	fmt.Printf("NVRAM:        %d reads, %d writes\n", d.NVRAMRead, d.NVRAMWrite)
	fmt.Printf("tags:         %d hits, %d clean misses, %d dirty misses\n",
		d.TagHit, d.TagMissClean, d.TagMissDirty)
	fmt.Printf("amplification: %.2f memory accesses per demand request\n", d.Amplification())
	fmt.Println("\nEvery miss cost 3 accesses (Table I): a DRAM tag check, an")
	fmt.Println("NVRAM fetch, and a DRAM insert - bandwidth the program never sees.")
}
