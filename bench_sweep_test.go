// Sweep-throughput benchmarks: design-space points executed per
// second through internal/sweep's pooled-controller runner, against
// the naive fresh-allocation-per-job baseline it replaces. These are
// the second tracked perf-trajectory metric (sweep_jobs_per_sec in
// BENCH_throughput.json, gated by cmd/benchcheck) next to the lines/s
// stream benchmarks in bench_throughput_test.go.
package twolm_test

import (
	"context"
	"runtime"
	"testing"

	"twolm/internal/sweep"
)

// benchSweep runs the committed 1024-point benchmark grid b.N times
// and reports jobs/s. fresh disables controller recycling, measuring
// the cold construct-per-job baseline.
func benchSweep(b *testing.B, fresh bool) {
	r, err := sweep.New(sweep.BenchmarkSpec())
	if err != nil {
		b.Fatal(err)
	}
	r.Fresh = fresh
	workers := runtime.NumCPU()
	// Untimed warm-up sweep: populates the per-geometry controller
	// arena (or, fresh, just faults the allocator paths), so the timed
	// sweeps run at steady state.
	if _, err := r.Run(context.Background(), workers, nil); err != nil {
		b.Fatal(err)
	}
	jobs := len(r.Points())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(context.Background(), workers, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkSweepThroughput is the gated configuration: pooled
// controllers recycled per geometry class at 0 steady-state allocs
// per job.
func BenchmarkSweepThroughput(b *testing.B) { benchSweep(b, false) }

// BenchmarkSweepThroughputFresh is the naive baseline: every job
// constructs its controller stack (multi-MiB tag arrays included)
// from scratch. The acceptance criterion is that the pooled runner
// sustains >= 1.5x this configuration's jobs/s.
func BenchmarkSweepThroughputFresh(b *testing.B) { benchSweep(b, true) }
