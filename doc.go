// Package twolm is a behavioral simulator of Intel Cascade Lake's 2LM
// ("memory mode") hardware-managed DRAM cache for Optane DC NVRAM,
// built to reproduce "A Case Against Hardware Managed DRAM Caches for
// NVRAM Based Systems" (Hildebrand, Angeles, Lowe-Power, Akella,
// ISPASS 2021).
//
// The library lives under internal/ and is organized as:
//
//   - internal/core — the system facade: 1LM/2LM modes, demand
//     operations, counters and the elapsed-time model;
//   - internal/imc, cache, dram, nvram, bwmodel, platform — the memory
//     system substrates;
//   - internal/kernels, lfsr — the microbenchmark generator;
//   - internal/nn, compiler, tensor, autotm — the CNN training case
//     study and its software-managed baseline;
//   - internal/graph, analytics, sage — the graph analytics case study;
//   - internal/experiments — every paper table and figure as a
//     function.
//
// The executables cmd/nvbench, cmd/cnnsim, cmd/graphsim and cmd/repro
// regenerate the paper's evaluation; see README.md, DESIGN.md and
// EXPERIMENTS.md.
package twolm
